//! Ablations over the design choices DESIGN.md calls out: the 33-entry
//! full-flush ceiling, the INVPCID/INVLPG cost gap behind §3.4, and the
//! §7 paravirtual fracturing hint.

use tlbdown_core::OptConfig;
use tlbdown_mem::{AddrSpace, PhysMem};
use tlbdown_types::{CostModel, Cycles, PageSize, VirtAddr};
use tlbdown_virt::{build_nested_mappings, NestedCpu, ParavirtFlushPolicy};
use tlbdown_workloads::madvise::{run_madvise_bench, MadviseBenchCfg, Placement};

/// Sweep the shootdown size across the 33-entry ceiling: initiator cycles
/// per *PTE* should drop sharply once the request escalates to a full
/// flush — the tradeoff behind Linux's `tlb_single_page_flush_ceiling`
/// (§2.1: "FreeBSD ... 4096, whereas Linux places the ceiling at 33").
pub fn ceiling_sweep() -> String {
    let mut out = String::from(
        "Ablation A: flush size vs the 33-entry full-flush ceiling (safe mode,\n\
         same-socket responder, baseline protocol)\n\n\
           PTEs   madvise cycles   cycles/PTE   executed as\n",
    );
    for ptes in [1u64, 8, 16, 32, 33, 34, 48, 64] {
        let mut cfg =
            MadviseBenchCfg::new(Placement::SameSocket, ptes, true, OptConfig::baseline());
        cfg.iters = 100;
        cfg.runs = 1;
        let r = run_madvise_bench(&cfg).expect("ablation cell runs clean");
        let mode = if ptes > 33 { "full flush" } else { "selective" };
        out += &format!(
            "  {ptes:>5} {:>16.0} {:>12.0}   {mode}\n",
            r.initiator.mean(),
            r.initiator.mean() / ptes as f64
        );
    }
    out += "\n  The per-PTE cost collapses past 33 entries: one full flush beats a\n\
            long INVLPG loop, at the price of refilling the whole TLB later.\n";
    out
}

/// Sensitivity of the in-context optimization (§3.4) to the
/// INVPCID-vs-INVLPG cost gap: if INVPCID were as fast as INVLPG, the
/// optimization would buy almost nothing.
pub fn invpcid_sensitivity() -> String {
    let mut out = String::from(
        "Ablation B: §3.4 benefit vs the INVPCID cost premium (safe mode,\n\
         same-socket, 10 PTEs; responder cycles)\n\n\
           INVPCID cost   without in-context   with in-context   saving\n",
    );
    for invpcid in [200u64, 250, 310, 400, 500] {
        let run = |in_context: bool| {
            let opts = OptConfig::cumulative(3).with_in_context(in_context);
            let mut cfg = MadviseBenchCfg::new(Placement::SameSocket, 10, true, opts);
            cfg.iters = 100;
            cfg.runs = 1;
            cfg.costs_override = Some(CostModel {
                invpcid_single: Cycles::new(invpcid),
                ..Default::default()
            });
            run_madvise_bench(&cfg)
                .expect("sensitivity cell runs clean")
                .responder
                .mean()
        };
        let without = run(false);
        let with = run(true);
        out += &format!(
            "  {invpcid:>12} {without:>20.0} {with:>17.0} {:>8.0}\n",
            without - with
        );
    }
    out += "\n  The optimization's value is exactly the instruction-cost gap times\n\
            the flushed-PTE count (plus the merge wins); at parity it vanishes —\n\
            the paper's motivation for measuring the two instructions first.\n";
    out
}

/// The §7 paravirtual hint: guest flush instructions and re-touch misses
/// with and without the hint, in a fractured configuration.
pub fn paravirt_hint() -> String {
    let run = |hint: bool| -> (u64, u64) {
        let mut mem = PhysMem::new(1 << 24);
        let mut gspace = AddrSpace::new(&mut mem).expect("guest tables");
        let mut ept = AddrSpace::new(&mut mem).expect("ept");
        build_nested_mappings(
            &mut mem,
            &mut gspace,
            &mut ept,
            VirtAddr::new(0x4000_0000),
            8 << 20,
            PageSize::Size2M,
            PageSize::Size4K,
        )
        .expect("mapping");
        let mut cpu = NestedCpu::new(1 << 20, CostModel::default());
        for i in 0..2048u64 {
            cpu.access(VirtAddr::new(0x4000_0000 + i * 4096), &gspace, &ept)
                .expect("mapped");
        }
        let policy = ParavirtFlushPolicy {
            fracturing_possible: hint,
        };
        cpu.tlb.reset_stats();
        // Invalidate 16 pages, as an unmap of a small buffer would.
        let issued = policy.execute(&mut cpu, VirtAddr::new(0x4000_0000), 16, 33);
        for i in 0..2048u64 {
            cpu.access(VirtAddr::new(0x4000_0000 + i * 4096), &gspace, &ept)
                .expect("mapped");
        }
        (issued, cpu.tlb.stats().misses)
    };
    let (i0, m0) = run(false);
    let (i1, m1) = run(true);
    format!(
        "Ablation C: §7 paravirtual fracturing hint (guest 2MB over host 4KB,\n\
         16-page invalidation, 2048-page working set)\n\n\
           policy         flush instructions   re-touch misses\n\
           without hint {i0:>20} {m0:>17}\n\
           with hint    {i1:>20} {m1:>17}\n\n\
           Both wipe the TLB (fracturing makes that unavoidable), but the hint\n\
           replaces {i0} serializing flush instructions with one — the software\n\
           half of the mitigation the paper proposes.\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_reports_are_nonempty() {
        assert!(paravirt_hint().contains("with hint"));
    }

    #[test]
    fn paravirt_hint_reduces_instructions_not_misses() {
        let s = paravirt_hint();
        // Structural check: the hint row issues exactly 1 instruction.
        assert!(s.contains("with hint                       1"), "{s}");
    }
}

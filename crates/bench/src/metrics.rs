//! Structured per-job metrics for the sweep layer.
//!
//! Every sweep job reports, besides its rendered text fragment, a
//! [`JobMetrics`] block: headline sim-side values (simulated cycles,
//! latency means, speedups) plus the full machine counter set (IPIs,
//! shootdowns, flushes — serialized through
//! [`tlbdown_sim::Counter::to_json`]). All of it is *deterministic
//! simulation state*: identical across hosts, thread counts and reruns.
//! `BENCH_*.json` therefore diffs these blocks byte-exactly — any drift
//! is a real behavioural change, not noise — while host wall-clock
//! stays outside, in the non-canonical part of the snapshot.

use std::collections::BTreeMap;

use tlbdown_sim::Counter;
use tlbdown_sweep::Json;

/// The deterministic sim-side metric block of one sweep job.
#[derive(Clone, Debug, Default)]
pub struct JobMetrics {
    /// Headline metrics, canonical (sorted) key order.
    values: BTreeMap<String, Json>,
    /// Machine counters accumulated across the job's runs.
    counters: Counter,
}

impl JobMetrics {
    /// An empty block.
    pub fn new() -> Self {
        JobMetrics::default()
    }

    /// Record an integer metric.
    pub fn put_u64(&mut self, key: &str, v: u64) {
        self.values.insert(key.to_string(), Json::U64(v));
    }

    /// Record a float metric (must be finite — these come from
    /// deterministic simulation math).
    pub fn put_f64(&mut self, key: &str, v: f64) {
        debug_assert!(v.is_finite(), "non-finite metric {key}");
        self.values.insert(key.to_string(), Json::F64(v));
    }

    /// Merge a machine counter set into the block.
    pub fn merge_counters(&mut self, c: &Counter) {
        self.counters.merge(c);
    }

    /// The canonical JSON object: headline keys in sorted order, then
    /// the full counter set under `"counters"`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        for (k, v) in &self.values {
            obj = obj.with(k, v.clone());
        }
        obj.with("counters", self.counters.to_json())
    }

    /// Canonical compact rendering — the unit of byte-exact comparison
    /// in the perf gate and the sweep determinism test.
    pub fn render(&self) -> String {
        self.to_json().render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_canonical_and_sorted() {
        let mut m = JobMetrics::new();
        m.put_f64("zeta", 1.5);
        m.put_u64("alpha", 7);
        let mut c = Counter::new();
        c.add("ipis_sent", 3);
        m.merge_counters(&c);
        assert_eq!(
            m.render(),
            "{\"alpha\":7,\"zeta\":1.5,\"counters\":{\"ipis_sent\":3}}"
        );
        // Whole-valued floats canonicalize to integers.
        let mut w = JobMetrics::new();
        w.put_f64("v", 4.0);
        assert_eq!(w.render(), "{\"v\":4,\"counters\":{}}");
    }
}

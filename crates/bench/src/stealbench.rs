//! The work-stealing microbenchmarks behind `BENCH_5.json`.
//!
//! Two before/after pairs, mirroring the `enginebench` discipline of
//! timing *the identical deterministic work* through two executors and
//! letting only the plumbing differ:
//!
//! 1. **Steal pool** — a deliberately imbalanced sweep matrix (every
//!    16th job is ~200× heavier than the rest, and the round-robin
//!    pre-distribution parks *all* of the heavy jobs on worker 0) run
//!    through the old central-mutex pool
//!    ([`tlbdown_sweep::run_jobs_mutex`]) and the Chase-Lev
//!    work-stealing pool ([`tlbdown_sweep::run_jobs`]). The canonical
//!    reduction must be byte-identical between the two pools and across
//!    every repetition; the wall-clock ratio is the steal speedup.
//!
//! 2. **Partitioned sim** — the conservative-window parallel executor
//!    ([`tlbdown_sim::par`]) on the 112-core tier shape: the merged-heap
//!    reference, the windowed executor on one thread, and the windowed
//!    executor on `threads` workers all dispatch the identical event
//!    stream (equal digests, asserted here), and the serial-vs-parallel
//!    wall ratio is the intra-sim speedup.
//!
//! Timed repetitions are interleaved (mutex, deque, mutex, deque, …) so
//! transient host noise lands on both sides of each ratio, and the best
//! wall-clock of each side is reported — same rationale as
//! [`crate::enginebench::run_dispatch_pair`]. All wall-clocks and
//! speedups are host-side (non-canonical); the digests and reductions
//! are deterministic simulation state and land in the byte-diffed sim
//! blocks.

use std::time::{Duration, Instant};

use tlbdown_sim::par::{run_reference, run_windowed, ParCfg, ParResult};
use tlbdown_sim::SplitMix64;
use tlbdown_sweep::{reduce_rendered, run_jobs, run_jobs_mutex, Job};

/// 64-bit FNV-1a offset basis / prime (same constants as the kernel's
/// state digest).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// One whole-word FNV-1a step.
fn fnv_fold(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

/// Configuration of one steal-pool comparison.
#[derive(Clone, Debug)]
pub struct StealCfg {
    /// Total sweep jobs in the matrix.
    pub jobs: usize,
    /// Every `heavy_every`-th job runs `heavy_iters`; the rest run
    /// `base_iters`. Kept a multiple of `threads` so the round-robin
    /// pre-distribution sends every heavy job to worker 0 — the
    /// worst-case imbalance the stealers must fix.
    pub heavy_every: usize,
    /// Digest-fold iterations for a light job.
    pub base_iters: u64,
    /// Digest-fold iterations for a heavy job.
    pub heavy_iters: u64,
    /// Seed for the per-job work streams.
    pub seed: u64,
    /// Pool width for both pools.
    pub threads: usize,
    /// Timed repetitions; the reported wall-clock per pool is the best
    /// of these. The reduction must agree across all of them.
    pub runs: u32,
}

impl StealCfg {
    /// The BENCH_5 configuration: 512 jobs, 32 of them heavy and all 32
    /// parked on worker 0 of an 8-wide pool, best of five.
    pub fn scale_tier() -> Self {
        StealCfg {
            jobs: 512,
            heavy_every: 16,
            base_iters: 2_000,
            heavy_iters: 400_000,
            seed: 0x57ea_1b05,
            threads: 8,
            runs: 5,
        }
    }

    /// A tier-1-sized comparison with the same imbalance shape.
    pub fn quick() -> Self {
        StealCfg {
            jobs: 96,
            heavy_iters: 40_000,
            base_iters: 500,
            runs: 1,
            ..Self::scale_tier()
        }
    }

    /// Work size of job `i`.
    fn iters_for(&self, i: usize) -> u64 {
        if i.is_multiple_of(self.heavy_every) {
            self.heavy_iters
        } else {
            self.base_iters
        }
    }
}

/// What one pool run produced.
#[derive(Clone, Debug)]
pub struct StealResult {
    /// Jobs completed (== `cfg.jobs`; a panic fails the benchmark).
    pub jobs: u64,
    /// FNV digest over the canonical reduction — deterministic, and
    /// identical between the two pools at any thread count.
    pub digest: u64,
    /// The canonical reduction itself (kept for byte-exact comparison).
    pub reduced: String,
    /// Host wall-clock for the sweep. Non-canonical.
    pub elapsed: Duration,
    /// Worker threads the pool actually used.
    pub threads: usize,
}

/// Build the imbalanced job matrix. Each job's output is a pure
/// function of `(seed, index)`, so the reduction is byte-identical for
/// any pool, thread count or schedule.
fn steal_jobs(cfg: &StealCfg) -> Vec<Job<String>> {
    (0..cfg.jobs)
        .map(|i| {
            let iters = cfg.iters_for(i);
            let seed = cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            Job::new(format!("steal/{i:04}"), move || {
                let mut rng = SplitMix64::new(seed);
                let mut h = FNV_OFFSET;
                for _ in 0..iters {
                    h = fnv_fold(h, rng.next_u64());
                }
                format!("steal job {i:04}: {iters} iters, digest {h:016x}\n")
            })
        })
        .collect()
}

/// One timed sweep of the matrix through one pool implementation.
fn steal_once(cfg: &StealCfg, mutex: bool) -> StealResult {
    let jobs = steal_jobs(cfg);
    let start = Instant::now();
    let report = if mutex {
        run_jobs_mutex(jobs, cfg.threads)
    } else {
        run_jobs(jobs, cfg.threads)
    };
    let elapsed = start.elapsed();
    assert!(
        report.failures.is_empty(),
        "steal bench job panicked: {:?}",
        report.failures
    );
    let reduced = reduce_rendered(&report, |s: &String| s.as_str());
    let mut digest = FNV_OFFSET;
    for b in reduced.bytes() {
        digest = fnv_fold(digest, u64::from(b));
    }
    StealResult {
        jobs: report.results.len() as u64,
        digest,
        reduced,
        elapsed,
        threads: report.threads,
    }
}

/// Both pools timed on the identical matrix.
#[derive(Clone, Debug)]
pub struct StealPair {
    /// The central-mutex queue (the pre-overhaul pool).
    pub mutex: StealResult,
    /// The Chase-Lev work-stealing pool.
    pub deque: StealResult,
}

impl StealPair {
    /// Steal-pool improvement: mutex wall over deque wall.
    pub fn speedup(&self) -> f64 {
        self.mutex.elapsed.as_nanos().max(1) as f64 / self.deque.elapsed.as_nanos().max(1) as f64
    }
}

/// Run the imbalanced matrix through both pools, interleaving the timed
/// repetitions and keeping the best wall-clock of each. Asserts the
/// canonical reduction is byte-identical between the pools and across
/// every repetition.
pub fn run_steal_pair(cfg: &StealCfg) -> StealPair {
    let mut mutex = steal_once(cfg, true);
    let mut deque = steal_once(cfg, false);
    assert_eq!(
        mutex.reduced, deque.reduced,
        "mutex and deque pools reduced different bytes"
    );
    for _ in 1..cfg.runs.max(1) {
        let m = steal_once(cfg, true);
        assert_eq!(m.reduced, mutex.reduced, "mutex reduction drifted");
        if m.elapsed < mutex.elapsed {
            mutex.elapsed = m.elapsed;
        }
        let d = steal_once(cfg, false);
        assert_eq!(d.reduced, deque.reduced, "deque reduction drifted");
        if d.elapsed < deque.elapsed {
            deque.elapsed = d.elapsed;
        }
    }
    StealPair { mutex, deque }
}

/// The three partitioned-sim executions of one configuration.
#[derive(Clone, Debug)]
pub struct ParBench {
    /// The merged-heap serial reference (semantic anchor; run once).
    pub reference: ParResult,
    /// The windowed executor on one thread.
    pub serial: ParResult,
    /// The windowed executor on the benchmark thread count.
    pub parallel: ParResult,
}

impl ParBench {
    /// Intra-sim speedup: windowed-serial wall over windowed-parallel
    /// wall (same executor, same barriers — only the workers differ).
    pub fn speedup(&self) -> f64 {
        self.serial.elapsed.as_nanos().max(1) as f64
            / self.parallel.elapsed.as_nanos().max(1) as f64
    }
}

/// Run the partitioned sim three ways — reference, windowed×1,
/// windowed×`threads` — asserting all three dispatch the identical
/// stream (equal digests and dispatch counts), with the timed windowed
/// repetitions interleaved and best-of-`runs` like the pool pair.
pub fn run_par_bench(cfg: &ParCfg, threads: usize, runs: u32) -> ParBench {
    let reference = run_reference(cfg);
    let mut serial = run_windowed(cfg, 1);
    let mut parallel = run_windowed(cfg, threads);
    for r in [&serial, &parallel] {
        assert_eq!(
            r.digest, reference.digest,
            "windowed executor diverged from the merged-heap reference"
        );
        assert_eq!(r.dispatched, reference.dispatched);
    }
    for _ in 1..runs.max(1) {
        let s = run_windowed(cfg, 1);
        assert_eq!(s.digest, reference.digest, "serial replay drifted");
        if s.elapsed < serial.elapsed {
            serial.elapsed = s.elapsed;
        }
        let p = run_windowed(cfg, threads);
        assert_eq!(p.digest, reference.digest, "parallel replay drifted");
        if p.elapsed < parallel.elapsed {
            parallel.elapsed = p.elapsed;
        }
    }
    ParBench {
        reference,
        serial,
        parallel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_reduce_identical_bytes_on_the_imbalanced_matrix() {
        let cfg = StealCfg::quick();
        let pair = run_steal_pair(&cfg);
        assert_eq!(pair.mutex.jobs, cfg.jobs as u64);
        assert_eq!(pair.deque.jobs, cfg.jobs as u64);
        assert_eq!(pair.mutex.digest, pair.deque.digest);
        assert_eq!(pair.mutex.reduced, pair.deque.reduced);
        assert!(pair.speedup() > 0.0);
    }

    #[test]
    fn steal_digest_is_thread_invariant() {
        let one = StealCfg {
            threads: 1,
            ..StealCfg::quick()
        };
        let eight = StealCfg::quick();
        assert_eq!(
            steal_once(&one, false).digest,
            steal_once(&eight, false).digest,
            "reduction must not depend on pool width"
        );
    }

    #[test]
    fn par_bench_executors_agree() {
        let cfg = ParCfg::quick(0xbe9c_5ea1);
        let b = run_par_bench(&cfg, 4, 1);
        assert_eq!(b.reference.digest, b.serial.digest);
        assert_eq!(b.reference.digest, b.parallel.digest);
        // Near drain, a chain can die on a budget-exhausted partition,
        // so the exact total is seed-dependent — but it is bounded by
        // the configured population + follow-up budget and must be the
        // bulk of it.
        assert!(b.serial.dispatched <= cfg.expected_dispatches());
        assert!(b.serial.dispatched > cfg.expected_dispatches() / 2);
        assert_eq!(b.serial.windows, b.parallel.windows);
        assert!(b.speedup() > 0.0);
    }
}

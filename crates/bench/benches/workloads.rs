//! Criterion benches over the application workloads (Figures 10–11) and
//! the fracturing experiment (Table 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlbdown_core::OptConfig;
use tlbdown_types::Cycles;
use tlbdown_workloads::apache::{run_apache, ApacheCfg};
use tlbdown_workloads::sysbench::{run_sysbench, SysbenchCfg};

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("sysbench");
    g.sample_size(10);
    for (name, opts) in [
        ("base", OptConfig::baseline()),
        ("all", OptConfig::all()),
        ("batching", OptConfig::baseline().with_batching(true)),
    ] {
        g.bench_with_input(
            BenchmarkId::new("fig10-4threads", name),
            &opts,
            |b, &opts| {
                b.iter(|| {
                    let mut cfg = SysbenchCfg::new(4, true, opts);
                    cfg.duration = Cycles::new(1_500_000);
                    cfg.file_pages = 2048;
                    run_sysbench(&cfg)
                })
            },
        );
    }
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("apache");
    g.sample_size(10);
    for (name, opts) in [
        ("base", OptConfig::baseline()),
        ("concurrent", OptConfig::cumulative(1)),
        ("all-no-cow", OptConfig::general_four().with_batching(true)),
    ] {
        g.bench_with_input(BenchmarkId::new("fig11-4cores", name), &opts, |b, &opts| {
            b.iter(|| {
                let mut cfg = ApacheCfg::new(4, true, opts);
                cfg.duration = Cycles::new(2_000_000);
                cfg.files = 8;
                run_apache(&cfg)
            })
        });
    }
    g.finish();
}

fn bench_table4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fracturing");
    g.sample_size(10);
    g.bench_function("table4-all-rows", |b| b.iter(tlbdown_bench::table4));
    g.finish();
}

criterion_group!(benches, bench_fig10, bench_fig11, bench_table4);
criterion_main!(benches);

//! Chaos-layer benches: simulator wall-clock for the shootdown-heavy
//! stress workload under fault injection. Tracks (a) the overhead the
//! inert chaos plumbing adds to a healthy run, and (b) the cost of the
//! watchdog's retry/degrade escalation when the fabric is lossy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlbdown_core::OptConfig;
use tlbdown_kernel::chaos::{ChaosConfig, Fault};
use tlbdown_kernel::prog::{BusyLoopProg, MadviseLoopProg};
use tlbdown_kernel::{KernelConfig, Machine};
use tlbdown_types::{CoreId, Cycles};

fn run_chaos(fault: Fault, opts: OptConfig) -> Cycles {
    let mut m = Machine::new(
        KernelConfig::test_machine(4)
            .with_opts(opts)
            .with_chaos(ChaosConfig::with_fault(fault, 0x0dd5_eed5)),
    );
    let mm = m.create_process().expect("boot: create process");
    m.spawn(mm, CoreId(0), Box::new(MadviseLoopProg::new(8, 5)));
    m.spawn(mm, CoreId(1), Box::new(BusyLoopProg));
    m.spawn(mm, CoreId(3), Box::new(BusyLoopProg));
    m.run_until(Cycles::new(60_000_000));
    m.now()
}

fn bench_fault_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("chaos_matrix");
    g.sample_size(10);
    for (name, fault) in [
        ("none", Fault::none()),
        ("ipi_drop", Fault::ipi_drop()),
        ("late_responder", Fault::late_responder()),
        ("everything", Fault::everything()),
    ] {
        for (opts_name, opts) in [
            ("base", OptConfig::baseline()),
            ("all4", OptConfig::general_four()),
        ] {
            g.bench_with_input(
                BenchmarkId::new(name, opts_name),
                &(fault.clone(), opts),
                |b, (fault, opts)| b.iter(|| run_chaos(fault.clone(), *opts)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fault_matrix);
criterion_main!(benches);

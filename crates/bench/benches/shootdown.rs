//! Criterion benches over the shootdown microbenchmark family
//! (Figures 5–8 / Table 3): wall-clock regression tracking for the
//! simulator itself, one group per paper artifact.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlbdown_core::OptConfig;
use tlbdown_workloads::cow::{run_cow_bench, CowBenchCfg};
use tlbdown_workloads::madvise::{run_madvise_bench, MadviseBenchCfg, Placement};

fn quick_cfg(placement: Placement, ptes: u64, safe: bool, opts: OptConfig) -> MadviseBenchCfg {
    let mut cfg = MadviseBenchCfg::new(placement, ptes, safe, opts);
    cfg.iters = 60;
    cfg.runs = 1;
    cfg
}

fn bench_fig5_to_8(c: &mut Criterion) {
    let mut g = c.benchmark_group("madvise_microbench");
    g.sample_size(10);
    for (fig, safe, ptes) in [
        (5u32, true, 1u64),
        (6, true, 10),
        (7, false, 1),
        (8, false, 10),
    ] {
        for (name, opts) in [
            ("base", OptConfig::baseline()),
            ("all4", OptConfig::general_four()),
        ] {
            g.bench_with_input(
                BenchmarkId::new(format!("fig{fig}"), format!("{name}-diffsocket")),
                &(safe, ptes, opts),
                |b, &(safe, ptes, opts)| {
                    b.iter(|| {
                        run_madvise_bench(&quick_cfg(Placement::DiffSocket, ptes, safe, opts))
                            .expect("bench cell runs clean")
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("cow_microbench");
    g.sample_size(10);
    for (name, opts) in [
        ("base", OptConfig::baseline()),
        ("all4", OptConfig::general_four()),
        ("all4+cow", OptConfig::general_four().with_cow(true)),
    ] {
        g.bench_with_input(BenchmarkId::new("fig9", name), &opts, |b, &opts| {
            b.iter(|| {
                let mut cfg = CowBenchCfg::new(true, opts);
                cfg.pages = 80;
                cfg.runs = 1;
                run_cow_bench(&cfg)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig5_to_8, bench_fig9);
criterion_main!(benches);

//! The no-trace bench guard: the tracing hooks must not tax the hot
//! path. Two variants of the same workload — `untraced` runs with the
//! tracer present but disabled (one predicted branch per hook),
//! `enabled` pays for real emission — so hook bloat shows up as
//! `untraced` regressing in the tracked criterion history. (The
//! compiled-out configuration is pinned separately by `cargo xtask
//! trace`, which builds the kernel with `--no-default-features`.)

use criterion::{criterion_group, criterion_main, Criterion};
use tlbdown_core::OptConfig;
use tlbdown_workloads::madvise::{
    run_madvise_bench, run_madvise_bench_traced, MadviseBenchCfg, Placement,
};

fn quick_cfg() -> MadviseBenchCfg {
    let mut cfg = MadviseBenchCfg::new(Placement::SameSocket, 10, true, OptConfig::cumulative(6));
    cfg.iters = 60;
    cfg.runs = 1;
    cfg
}

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10);
    g.bench_function("untraced", |b| {
        b.iter(|| run_madvise_bench(&quick_cfg()).expect("bench cell runs clean"))
    });
    g.bench_function("enabled", |b| {
        b.iter(|| run_madvise_bench_traced(&quick_cfg(), 1 << 14).expect("bench cell runs clean"))
    });
    g.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);

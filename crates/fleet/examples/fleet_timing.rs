//! Rough per-machine cost of the headline-topology node sim.
use std::time::Instant;
use tlbdown_fleet::{run_node, FleetCfg, FleetFaultSpec};

fn main() {
    let cfg = FleetCfg::full_tier(FleetFaultSpec::combined(), 7);
    // One machine, headline topology.
    let plan = tlbdown_fleet::FleetFaultPlan::new(&cfg.spec, cfg.seed, 4, cfg.window);
    for i in 0..4u32 {
        let node = {
            // mirror FleetCfg::node_cfg via a quick rebuild
            tlbdown_fleet::NodeCfg {
                machine_id: i,
                sockets: cfg.sockets,
                logical_per_socket: cfg.logical_per_socket,
                smt: cfg.smt,
                workers: cfg.workers,
                churn_slots: cfg.churn_slots,
                file_pages: cfg.file_pages,
                files: cfg.files,
                request_work: cfg.request_work,
                offered_rps: cfg.node_rps,
                window: cfg.window,
                cold_window: cfg.cold_window,
                opts: cfg.opts,
                safe: cfg.safe,
                ipi: cfg.spec.ipi.clone(),
                faults: plan.machines[i as usize].clone(),
                seed: cfg.seed ^ u64::from(i + 1),
                trace_capacity: cfg.trace_capacity,
            }
        };
        let t = Instant::now();
        let p = run_node(&node).expect("node runs");
        println!(
            "machine {i}: {:?} — {} req, {} shootdowns, crashed={}",
            t.elapsed(),
            p.requests,
            p.shootdowns,
            p.crashed
        );
    }
}

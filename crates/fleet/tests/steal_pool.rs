//! The steal-heavy fleet rerun: the fleet runner on the Chase-Lev
//! work-stealing pool.
//!
//! The fleet's node phase fans one job per machine across the sweep
//! pool, and machine sims are *not* uniform — a crashing machine
//! reboots (two full kernel boots), a slow machine runs a degraded
//! clock, a healthy machine just serves — so the round-robin
//! pre-distribution is exactly the imbalanced shape that forces idle
//! workers to steal from loaded ones mid-sweep. These tests rerun that
//! phase at several pool widths (including widths forcing multiple
//! stealers per owner deque) and require the canonical fleet document
//! to stay byte-identical: work stealing may move jobs between
//! workers, never change what they compute or the order they reduce
//! in.

use tlbdown_fleet::{replay_fleet, run_fleet, FleetCfg, FleetFaultSpec};
use tlbdown_sim::FaultSpec;

/// A cell with real machine-level churn: crashes and slow machines
/// under IPI drops, so the per-machine job costs are deliberately
/// uneven.
fn churn_cell(machines: u32) -> FleetCfg {
    FleetCfg::quick(
        machines,
        FleetFaultSpec::combined().with_ipi(FaultSpec::ipi_drop()),
        0x57ea_1f1e,
    )
}

#[test]
fn fleet_document_is_byte_identical_across_pool_widths() {
    let cfg = churn_cell(12);
    // 1 = pure owner pops (no steals possible), 3 = owners plus cross
    // stealing, 8 = more workers than unevenly-sized job classes.
    let serial = replay_fleet(&cfg, 1, 3).expect("fleet replays clean at 1 vs 3 threads");
    let wide = replay_fleet(&cfg, 8, 1).expect("fleet replays clean at 8 vs 1 threads");
    assert_eq!(serial, wide, "pool width leaked into the fleet document");
}

#[test]
fn oversubscribed_pool_still_reduces_canonically() {
    // More workers than machines: most deques are empty from the start
    // and every worker beyond the first N lives entirely on steals.
    let cfg = churn_cell(6);
    let narrow = run_fleet(&cfg, 2).expect("narrow run clean").sim_json();
    let over = run_fleet(&cfg, 16)
        .expect("oversubscribed run clean")
        .sim_json();
    assert_eq!(narrow.render(), over.render());
}

#[test]
fn survival_verdicts_match_the_serial_run() {
    let cfg = churn_cell(10);
    let a = run_fleet(&cfg, 1).expect("serial run clean");
    let b = run_fleet(&cfg, 4).expect("pooled run clean");
    assert_eq!(a.fully_accounted, b.fully_accounted);
    assert_eq!(a.zero_violations, b.zero_violations);
    assert_eq!(
        a.crashed_recovered_or_ejected,
        b.crashed_recovered_or_ejected
    );
    assert_eq!(a.crashed, b.crashed);
    assert_eq!(a.sim_json().render(), b.sim_json().render());
}

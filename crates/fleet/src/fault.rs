//! Machine-level fault axis: crashes, stragglers, partitions, churn.
//!
//! [`crate::FleetFaultSpec`] mirrors the shape of `tlbdown_sim::fault::FaultSpec`
//! one layer up: probabilities and magnitudes of *machine-scale* hazards,
//! composable with the same fieldwise-max [`FleetFaultSpec::merge`]
//! lattice (so `combined()` is a join of presets, exactly like the IPI
//! layer's). A [`FleetFaultPlan`] expands the spec into one concrete,
//! seeded [`MachineFaults`] decision per machine — pure data both the
//! node sharding phase and the serial LB phase read, which is what keeps
//! the two phases consistent without sharing any mutable state.

use tlbdown_sim::fault::FaultSpec;
use tlbdown_sim::SplitMix64;

/// Probabilities and magnitudes of machine-level hazards over one fleet
/// window. Layered *on top of* an IPI-level [`FaultSpec`]: a machine can
/// be storming, crashing and partitioned at once.
#[derive(Clone, Debug, PartialEq)]
pub struct FleetFaultSpec {
    /// Probability a machine crashes (and cold-reboots) mid-window.
    pub crash_p: f64,
    /// Ticks a crashed machine stays down before its reboot completes.
    pub crash_downtime: u64,
    /// Probability a machine is a straggler.
    pub slow_p: f64,
    /// Latency multiplier on straggler machines (≥ 1.0 to matter).
    pub slow_factor: f64,
    /// Probability the LB↔machine link partitions once mid-window.
    pub partition_p: f64,
    /// Ticks a partition lasts.
    pub partition_len: u64,
    /// Probability a machine hosts tenant churn (mmap/munmap storms
    /// from process turnover) alongside its serving workers.
    pub churn_p: f64,
    /// IPI-level faults injected inside every machine's kernel.
    pub ipi: FaultSpec,
}

impl Default for FleetFaultSpec {
    fn default() -> Self {
        FleetFaultSpec::none()
    }
}

impl FleetFaultSpec {
    /// No machine-level hazards, no IPI faults.
    pub fn none() -> Self {
        FleetFaultSpec {
            crash_p: 0.0,
            crash_downtime: 0,
            slow_p: 0.0,
            slow_factor: 1.0,
            partition_p: 0.0,
            partition_len: 0,
            churn_p: 0.0,
            ipi: FaultSpec::none(),
        }
    }

    /// A third of the fleet crashes mid-window and cold-reboots.
    pub fn crash() -> Self {
        FleetFaultSpec {
            crash_p: 0.35,
            crash_downtime: 600_000,
            ..FleetFaultSpec::none()
        }
    }

    /// A fifth of the fleet serves at a third of normal speed.
    pub fn slow_machine() -> Self {
        FleetFaultSpec {
            slow_p: 0.2,
            slow_factor: 3.0,
            ..FleetFaultSpec::none()
        }
    }

    /// A quarter of the fleet loses its LB link for a stretch.
    pub fn partition() -> Self {
        FleetFaultSpec {
            partition_p: 0.25,
            partition_len: 900_000,
            ..FleetFaultSpec::none()
        }
    }

    /// Half the fleet hosts tenant churn under its serving workers.
    pub fn tenant_churn() -> Self {
        FleetFaultSpec {
            churn_p: 0.5,
            ..FleetFaultSpec::none()
        }
    }

    /// Everything at once: the join of all four machine-level presets.
    pub fn combined() -> Self {
        FleetFaultSpec::crash()
            .merge(&FleetFaultSpec::slow_machine())
            .merge(&FleetFaultSpec::partition())
            .merge(&FleetFaultSpec::tenant_churn())
    }

    /// Builder-style: layer an IPI-level fault spec under the machines.
    #[must_use]
    pub fn with_ipi(mut self, ipi: FaultSpec) -> Self {
        self.ipi = ipi;
        self
    }

    /// Compose two specs fieldwise, mirroring [`FaultSpec::merge`]: the
    /// maximum of every probability and magnitude, and the join of the
    /// IPI layers. Commutative, associative, idempotent; `none()` is the
    /// identity.
    #[must_use]
    pub fn merge(&self, other: &FleetFaultSpec) -> FleetFaultSpec {
        FleetFaultSpec {
            crash_p: self.crash_p.max(other.crash_p),
            crash_downtime: self.crash_downtime.max(other.crash_downtime),
            slow_p: self.slow_p.max(other.slow_p),
            slow_factor: self.slow_factor.max(other.slow_factor),
            partition_p: self.partition_p.max(other.partition_p),
            partition_len: self.partition_len.max(other.partition_len),
            churn_p: self.churn_p.max(other.churn_p),
            ipi: self.ipi.merge(&other.ipi),
        }
    }

    /// The machine-level presets of the survival matrix's first axis.
    pub fn matrix() -> Vec<(&'static str, FleetFaultSpec)> {
        vec![
            ("crash", FleetFaultSpec::crash()),
            ("slow-machine", FleetFaultSpec::slow_machine()),
            ("partition", FleetFaultSpec::partition()),
            ("tenant-churn", FleetFaultSpec::tenant_churn()),
        ]
    }
}

/// The concrete fate of one machine over the window, expanded from the
/// spec by [`FleetFaultPlan::new`]. Pure data: both the sharded node
/// phase and the serial LB phase read it, neither mutates it.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineFaults {
    /// Fleet tick at which the machine crashes, if it does.
    pub crash_at: Option<u64>,
    /// Ticks the machine is down after its crash.
    pub downtime: u64,
    /// Service-latency multiplier (1.0 for a healthy machine).
    pub slow_factor: f64,
    /// LB↔machine partition window `[start, end)`, if any.
    pub partition: Option<(u64, u64)>,
    /// Whether this machine hosts tenant churn.
    pub churn: bool,
}

impl MachineFaults {
    /// A machine nothing happens to.
    pub fn healthy() -> Self {
        MachineFaults {
            crash_at: None,
            downtime: 0,
            slow_factor: 1.0,
            partition: None,
            churn: false,
        }
    }

    /// Whether the LB can reach this machine at fleet tick `t`.
    pub fn reachable_at(&self, t: u64) -> bool {
        if let Some(at) = self.crash_at {
            if t >= at && t < at.saturating_add(self.downtime) {
                return false;
            }
        }
        if let Some((s, e)) = self.partition {
            if t >= s && t < e {
                return false;
            }
        }
        true
    }
}

/// One seeded decision per machine: a pure function of
/// `(spec, seed, machines, window)`.
#[derive(Clone, Debug)]
pub struct FleetFaultPlan {
    /// Per-machine fates, indexed by machine ID.
    pub machines: Vec<MachineFaults>,
}

impl FleetFaultPlan {
    /// Expand `spec` over `machines` machines and a window of `window`
    /// ticks. Crashes land in the middle 20–70% of the window so the LB
    /// sees both pre-crash service and post-recovery traffic; partitions
    /// start anywhere they can still finish.
    pub fn new(spec: &FleetFaultSpec, seed: u64, machines: u32, window: u64) -> Self {
        let mut out = Vec::with_capacity(machines as usize);
        for i in 0..machines {
            // Independent stream per machine: adding machines never
            // reshuffles the fates of existing ones.
            let mut rng =
                SplitMix64::new(seed ^ u64::from(i + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let mut f = MachineFaults::healthy();
            if rng.next_f64() < spec.crash_p {
                let lo = window / 5;
                let span = (window * 7 / 10).saturating_sub(lo).max(1);
                f.crash_at = Some(lo + rng.gen_range(span));
                f.downtime = spec.crash_downtime;
            }
            if rng.next_f64() < spec.slow_p {
                f.slow_factor = spec.slow_factor.max(1.0);
            }
            if rng.next_f64() < spec.partition_p && spec.partition_len > 0 {
                let len = spec.partition_len.min(window);
                let start = rng.gen_range((window - len).max(1));
                f.partition = Some((start, start + len));
            }
            if rng.next_f64() < spec.churn_p {
                f.churn = true;
            }
            out.push(f);
        }
        FleetFaultPlan { machines: out }
    }

    /// Machines the plan crashes.
    pub fn crashed(&self) -> impl Iterator<Item = usize> + '_ {
        self.machines
            .iter()
            .enumerate()
            .filter(|(_, f)| f.crash_at.is_some())
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_a_join_and_none_is_identity() {
        let a = FleetFaultSpec::crash();
        let b = FleetFaultSpec::partition();
        assert_eq!(a.merge(&b), b.merge(&a));
        assert_eq!(a.merge(&a), a);
        assert_eq!(a.merge(&FleetFaultSpec::none()), a);
        let c = FleetFaultSpec::combined();
        assert!(c.crash_p > 0.0 && c.partition_p > 0.0 && c.churn_p > 0.0);
        assert!(c.slow_factor > 1.0);
    }

    #[test]
    fn plan_is_deterministic_and_prefix_stable() {
        let spec = FleetFaultSpec::combined();
        let a = FleetFaultPlan::new(&spec, 7, 64, 4_000_000);
        let b = FleetFaultPlan::new(&spec, 7, 64, 4_000_000);
        assert_eq!(a.machines, b.machines);
        // Growing the fleet never changes existing machines' fates.
        let bigger = FleetFaultPlan::new(&spec, 7, 128, 4_000_000);
        assert_eq!(&bigger.machines[..64], &a.machines[..]);
        // Different seeds decide differently.
        let c = FleetFaultPlan::new(&spec, 8, 64, 4_000_000);
        assert_ne!(a.machines, c.machines);
    }

    #[test]
    fn reachability_tracks_crash_and_partition_windows() {
        let f = MachineFaults {
            crash_at: Some(100),
            downtime: 50,
            slow_factor: 1.0,
            partition: Some((300, 400)),
            churn: false,
        };
        assert!(f.reachable_at(99));
        assert!(!f.reachable_at(100));
        assert!(!f.reachable_at(149));
        assert!(f.reachable_at(150));
        assert!(!f.reachable_at(350));
        assert!(f.reachable_at(400));
    }
}

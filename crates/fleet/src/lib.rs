//! Fleet resilience tier: many simulated machines behind a
//! deterministic load balancer.
//!
//! The paper's evaluation stops at one dual-socket machine; real
//! deployments of its kernel run *fleets* of them behind load
//! balancers, where the interesting failures are machine-scale — a
//! node crashes and reboots with stone-cold TLBs, a straggler triples
//! every service time, a link partitions, a co-tenant churns through
//! mmap/munmap storms. This crate composes the existing single-machine
//! simulator into that picture:
//!
//! - [`fault`]: the machine-level fault axis — [`FleetFaultSpec`]
//!   mirrors the IPI layer's fieldwise-max merge lattice one layer up,
//!   and [`FleetFaultPlan`] expands it into prefix-stable per-machine
//!   fates.
//! - [`node`]: phase 1 — each machine is a full `kernel::Machine`
//!   running Apache-style serving workers (plus tenant churn when the
//!   plan says so), crashing and [`cold-rebooting`] mid-window if fated,
//!   summarized into a pure [`NodeProfile`].
//! - [`lb`]: phase 2 — a serial, seeded DES load balancer with
//!   timeouts, bounded jittered-exponential-backoff retries, hedged
//!   re-dispatch, and probe-driven ejection/probation; every request
//!   ends served or typed-failed.
//! - [`run`]: the orchestration — node jobs shard across the sweep
//!   pool, reduce in canonical machine order, feed the serial LB, and
//!   the whole document is byte-identical at any thread count
//!   ([`replay_fleet`] proves it).
//!
//! [`cold-rebooting`]: tlbdown_kernel::Machine::cold_reboot

pub mod fault;
pub mod lb;
pub mod node;
pub mod run;

pub use fault::{FleetFaultPlan, FleetFaultSpec, MachineFaults};
pub use lb::{LbCfg, LbResult, RequestError};
pub use node::{run_node, NodeCfg, NodeProfile};
pub use run::{replay_fleet, run_fleet, window_secs, FleetCfg, FleetResult};

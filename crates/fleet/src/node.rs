//! Phase 1: one fleet machine = one full kernel simulation.
//!
//! A node boots a real `kernel::Machine` (complete shootdown protocol,
//! chaos layer, oracle) on the scaled dual-socket topology, runs
//! Apache-style serving workers plus optional tenant-churn slots, and —
//! if the fleet fault plan says so — crashes mid-window and
//! [`tlbdown_kernel::Machine::cold_reboot`]s into a fresh kernel with
//! empty TLBs. The output is a [`NodeProfile`]: a pure, canonical
//! summary (request counts, cold/warm service latency, shootdown
//! critical-path aggregates from the trace subsystem, violations,
//! digest) that phase 2's load balancer consumes. A profile is a pure
//! function of its [`NodeCfg`], which is what lets nodes shard freely
//! across the sweep pool.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use tlbdown_core::OptConfig;
use tlbdown_kernel::chaos::{ChaosConfig, WatchdogConfig};
use tlbdown_kernel::mm::FileId;
use tlbdown_kernel::prog::{Prog, ProgAction, ProgCtx};
use tlbdown_kernel::{KernelConfig, Machine, Syscall};
use tlbdown_sim::fault::FaultSpec;
use tlbdown_sim::{Counter, SplitMix64};
use tlbdown_sweep::Json;
use tlbdown_trace::{analyze, PhaseTotals};
use tlbdown_types::{CoreId, Cycles, SimError, SimResult, Topology, VirtAddr};

use crate::fault::MachineFaults;

/// Configuration of one node simulation. Built by the fleet runner from
/// the fleet config plus the machine's [`MachineFaults`]; everything a
/// node touches is in here, so the job closure is self-contained.
#[derive(Clone, Debug)]
pub struct NodeCfg {
    /// This machine's fleet ID.
    pub machine_id: u32,
    /// Socket count of the node's topology.
    pub sockets: u32,
    /// Logical cores per socket.
    pub logical_per_socket: u32,
    /// SMT ways.
    pub smt: u32,
    /// Cores running Apache-style serving workers.
    pub workers: u32,
    /// Cores running tenant-churn slots (active only when the fault
    /// plan marks the machine churning).
    pub churn_slots: u32,
    /// Pages per served file.
    pub file_pages: u64,
    /// Distinct files served.
    pub files: u64,
    /// Application work per request, in cycles.
    pub request_work: u64,
    /// Aggregate offered load, requests per simulated second.
    pub offered_rps: f64,
    /// The serving window, in cycles (shared with the LB phase).
    pub window: u64,
    /// Requests starting within this many cycles of a (re)boot count
    /// toward the cold-latency bucket (empty-TLB refill tax).
    pub cold_window: u64,
    /// Optimizations active.
    pub opts: OptConfig,
    /// Mitigations on?
    pub safe: bool,
    /// IPI-level faults injected inside the kernel.
    pub ipi: FaultSpec,
    /// This machine's fate per the fleet fault plan.
    pub faults: MachineFaults,
    /// Per-machine seed (derived from the fleet seed and machine ID).
    pub seed: u64,
    /// Trace ring capacity per core; 0 disables tracing.
    pub trace_capacity: usize,
}

impl NodeCfg {
    /// Total logical cores this node simulates.
    pub fn num_cores(&self) -> u32 {
        self.sockets * self.logical_per_socket
    }
}

/// What one node contributed to the fleet: the canonical per-machine
/// summary consumed by the LB phase and the BENCH_4 report.
#[derive(Clone, Debug)]
pub struct NodeProfile {
    /// The machine's fleet ID.
    pub machine_id: u32,
    /// Logical cores simulated.
    pub cores: u32,
    /// Requests the node's workers completed across all boots.
    pub requests: u64,
    /// Tenant generations that turned over (0 unless churning).
    pub turnovers: u64,
    /// Requests in flight at the crash — lost with the machine, each
    /// accounted as a typed loss rather than silently vanishing.
    pub lost_in_flight: u64,
    /// Whether the fault plan crashed this machine.
    pub crashed: bool,
    /// Kernel boots (1, or 2 after a crash with remaining window).
    pub boots: u32,
    /// Mean service latency of warm requests, in cycles.
    pub warm_latency: f64,
    /// Mean service latency of cold-window requests, in cycles (0 when
    /// no request landed in a cold window).
    pub cold_latency: f64,
    /// Oracle violations across all boots (the gate requires 0).
    pub violations: u64,
    /// Typed kernel errors recorded (handled conditions, not panics).
    pub kernel_errors: u64,
    /// Remote shootdowns on the trace critical path.
    pub shootdowns: u64,
    /// Mean end-to-end shootdown cost, in cycles (trace subsystem).
    pub shootdown_cost_mean: f64,
    /// Total shootdown critical-path cycles.
    pub shootdown_cost_cycles: u64,
    /// Simulated cycles across boots.
    pub sim_cycles: u64,
    /// Machine state digest folded across boots.
    pub digest: u64,
    /// Full machine counters merged across boots.
    pub counters: Counter,
}

impl NodeProfile {
    /// Canonical JSON: fixed key order, deterministic values only.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("machine_id", Json::U64(u64::from(self.machine_id)))
            .with("cores", Json::U64(u64::from(self.cores)))
            .with("requests", Json::U64(self.requests))
            .with("turnovers", Json::U64(self.turnovers))
            .with("lost_in_flight", Json::U64(self.lost_in_flight))
            .with("crashed", Json::U64(u64::from(self.crashed)))
            .with("boots", Json::U64(u64::from(self.boots)))
            .with("warm_latency", Json::F64(self.warm_latency))
            .with("cold_latency", Json::F64(self.cold_latency))
            .with("violations", Json::U64(self.violations))
            .with("kernel_errors", Json::U64(self.kernel_errors))
            .with("shootdowns", Json::U64(self.shootdowns))
            .with("shootdown_cost_mean", Json::F64(self.shootdown_cost_mean))
            .with(
                "shootdown_cost_cycles",
                Json::U64(self.shootdown_cost_cycles),
            )
            .with("sim_cycles", Json::U64(self.sim_cycles))
            .with("digest", Json::Str(format!("{:016x}", self.digest)))
    }
}

/// Shared request accounting between a boot's workers and the harness.
#[derive(Default)]
struct NodeAccum {
    cold_n: u64,
    cold_cycles: u64,
    warm_n: u64,
    warm_cycles: u64,
    in_flight: u64,
}

/// One serving worker: open-loop arrivals; serve = mmap / touch / send /
/// compute / munmap, with the request latency recorded cold or warm by
/// its start time relative to this boot.
struct FleetWorker {
    files: Vec<FileId>,
    file_pages: u64,
    interval: f64,
    next_arrival: f64,
    request_work: u64,
    rng: SplitMix64,
    accum: Rc<RefCell<NodeAccum>>,
    cold_until: u64,
    deadline: u64,
    state: u32,
    addr: u64,
    touch: u64,
    req_start: u64,
}

impl Prog for FleetWorker {
    fn next(&mut self, ctx: &ProgCtx) -> ProgAction {
        let now = ctx.now.as_u64();
        match self.state {
            0 => {
                if now >= self.deadline {
                    return ProgAction::Exit;
                }
                if (now as f64) < self.next_arrival {
                    let wait = (self.next_arrival - now as f64).ceil() as u64;
                    return ProgAction::Compute(Cycles::new(wait.max(1)));
                }
                self.next_arrival += self.interval * self.rng.exponential(1.0);
                self.state = 1;
                self.req_start = now;
                self.accum.borrow_mut().in_flight += 1;
                let file = self.files[self.rng.gen_range(self.files.len() as u64) as usize];
                ProgAction::Syscall(Syscall::MmapFile {
                    file,
                    page_offset: 0,
                    pages: self.file_pages,
                    shared: true,
                })
            }
            1 => {
                self.addr = ctx.retval;
                self.touch = 0;
                self.state = 2;
                ProgAction::Nop
            }
            2 => {
                if self.touch < self.file_pages {
                    let va = VirtAddr::new(self.addr + self.touch * 4096);
                    self.touch += 1;
                    ProgAction::Access { va, write: false }
                } else {
                    self.state = 3;
                    ProgAction::Syscall(Syscall::Send {
                        addr: VirtAddr::new(self.addr),
                        pages: self.file_pages,
                    })
                }
            }
            3 => {
                self.state = 4;
                ProgAction::Compute(Cycles::new(self.request_work))
            }
            4 => {
                self.state = 5;
                ProgAction::Syscall(Syscall::Munmap {
                    addr: VirtAddr::new(self.addr),
                    pages: self.file_pages,
                })
            }
            5 => {
                let lat = now.saturating_sub(self.req_start);
                let mut a = self.accum.borrow_mut();
                a.in_flight -= 1;
                if self.req_start < self.cold_until {
                    a.cold_n += 1;
                    a.cold_cycles += lat;
                } else {
                    a.warm_n += 1;
                    a.warm_cycles += lat;
                }
                self.state = 0;
                ProgAction::Nop
            }
            _ => ProgAction::Exit,
        }
    }
}

/// Boot one kernel for `deadline` cycles of serving, populate it, run
/// it, and fold its stats into the profile accumulators.
#[allow(clippy::too_many_arguments)]
fn run_boot(
    m: &mut Machine,
    cfg: &NodeCfg,
    deadline: u64,
    boot_seed: u64,
    accum: &Rc<RefCell<NodeAccum>>,
    turnovers: &Rc<Cell<u64>>,
) -> SimResult<()> {
    let mm = m.create_process()?;
    let mut files = Vec::with_capacity(cfg.files as usize);
    for _ in 0..cfg.files {
        files.push(m.create_file(cfg.file_pages)?);
    }
    let mut rng = SplitMix64::new(boot_seed);
    let interval = Cycles::FREQ_HZ as f64 / (cfg.offered_rps / f64::from(cfg.workers.max(1)));
    for w in 0..cfg.workers {
        m.spawn(
            mm,
            CoreId(w),
            Box::new(FleetWorker {
                files: files.clone(),
                file_pages: cfg.file_pages,
                interval,
                next_arrival: 0.0,
                request_work: cfg.request_work,
                rng: rng.fork(),
                accum: accum.clone(),
                cold_until: cfg.cold_window.min(deadline),
                deadline,
                state: 0,
                addr: 0,
                touch: 0,
                req_start: 0,
            }),
        );
    }
    if cfg.faults.churn && cfg.churn_slots > 0 {
        let churn_mm = m.create_process()?;
        for s in 0..cfg.churn_slots {
            let churn_cfg = tlbdown_workloads::churn::ChurnCfg::brisk(
                Cycles::new(deadline),
                boot_seed ^ u64::from(s + 1).wrapping_mul(0x2545_f491),
            );
            m.spawn(
                churn_mm,
                CoreId(cfg.workers + s),
                Box::new(tlbdown_workloads::churn::ChurnProg::new(
                    churn_cfg,
                    turnovers.clone(),
                )),
            );
        }
    }
    if cfg.trace_capacity > 0 {
        m.start_tracing(cfg.trace_capacity);
    }
    // Run past the deadline so in-flight requests and shootdowns drain;
    // workers exit at `deadline` on their own.
    m.run_until(Cycles::new(deadline + deadline / 4));
    Ok(())
}

/// Run one node through its window (crashing and rebooting if the plan
/// says so) and summarize it. Pure function of `cfg`.
pub fn run_node(cfg: &NodeCfg) -> SimResult<NodeProfile> {
    if cfg.workers + cfg.churn_slots > cfg.num_cores() {
        return Err(SimError::InvalidArgument(format!(
            "machine {}: {} workers + {} churn slots exceed {} cores",
            cfg.machine_id,
            cfg.workers,
            cfg.churn_slots,
            cfg.num_cores()
        )));
    }
    let topo = Topology::new(cfg.sockets, cfg.logical_per_socket).with_smt(cfg.smt);
    let mut kc = KernelConfig {
        topo,
        ..KernelConfig::paper_baseline()
    }
    .with_opts(cfg.opts)
    .with_safe_mode(cfg.safe)
    .with_chaos(ChaosConfig {
        fault: cfg.ipi.clone(),
        fault_seed: cfg.seed ^ 0xfab1_c0de,
        watchdog: WatchdogConfig {
            // The default 1M-cycle timeout is most of a fleet window: a
            // single dropped IPI would stall a serving worker for the
            // whole run. Scale the ladder's base rung to the window
            // (storm cells do the same) so drops cost retries, not the
            // machine.
            timeout_cycles: (cfg.window / 24).max(10_000),
            ..WatchdogConfig::default()
        },
    });
    kc.seed = cfg.seed;

    // Segment the window around the crash: [0, crash_at) on boot 0,
    // then — after `downtime` ticks of darkness — whatever window
    // remains on boot 1, cold TLBs and all.
    let crash_at = cfg.faults.crash_at.filter(|&t| t < cfg.window);
    let segments: Vec<u64> = match crash_at {
        None => vec![cfg.window],
        Some(t) => {
            let after = cfg
                .window
                .saturating_sub(t.saturating_add(cfg.faults.downtime));
            if after > 0 {
                vec![t, after]
            } else {
                vec![t]
            }
        }
    };

    let accum = Rc::new(RefCell::new(NodeAccum::default()));
    let turnovers = Rc::new(Cell::new(0u64));
    let mut profile = NodeProfile {
        machine_id: cfg.machine_id,
        cores: cfg.num_cores(),
        requests: 0,
        turnovers: 0,
        lost_in_flight: 0,
        crashed: crash_at.is_some(),
        boots: segments.len() as u32,
        warm_latency: 0.0,
        cold_latency: 0.0,
        violations: 0,
        kernel_errors: 0,
        shootdowns: 0,
        shootdown_cost_mean: 0.0,
        shootdown_cost_cycles: 0,
        sim_cycles: 0,
        digest: 0,
        counters: Counter::new(),
    };
    let mut totals = PhaseTotals::default();
    let mut machine = Machine::new(kc);
    for (boot, &deadline) in segments.iter().enumerate() {
        if boot > 0 {
            // The crash takes whatever was in flight with it — a typed
            // loss the profile reports, never a silent one.
            let mut a = accum.borrow_mut();
            profile.lost_in_flight += a.in_flight;
            a.in_flight = 0;
            drop(a);
            machine = machine.cold_reboot();
        }
        let boot_seed = cfg.seed ^ (boot as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        run_boot(&mut machine, cfg, deadline, boot_seed, &accum, &turnovers)?;
        if cfg.trace_capacity > 0 {
            let trace = machine.take_trace();
            let analysis = analyze(&trace);
            let t = PhaseTotals::of(&analysis, true);
            totals.shootdowns += t.shootdowns;
            for (acc, v) in totals.cycles.iter_mut().zip(t.cycles.iter()) {
                *acc += v;
            }
        }
        profile.violations += machine.violations().len() as u64;
        profile.kernel_errors += machine.recorded_errors().len() as u64;
        profile.sim_cycles += machine.now().as_u64();
        profile.digest ^= machine.state_digest().rotate_left((boot as u32 % 63) + 1);
        profile.counters.merge(&machine.stats.counters);
    }
    let a = accum.borrow();
    profile.requests = a.cold_n + a.warm_n;
    profile.turnovers = turnovers.get();
    profile.warm_latency = if a.warm_n > 0 {
        a.warm_cycles as f64 / a.warm_n as f64
    } else {
        0.0
    };
    profile.cold_latency = if a.cold_n > 0 {
        a.cold_cycles as f64 / a.cold_n as f64
    } else {
        0.0
    };
    profile.shootdowns = totals.shootdowns;
    profile.shootdown_cost_mean = totals.mean_total();
    profile.shootdown_cost_cycles = totals.total_cycles();
    Ok(profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(machine_id: u32) -> NodeCfg {
        NodeCfg {
            machine_id,
            sockets: 2,
            logical_per_socket: 8,
            smt: 2,
            workers: 4,
            churn_slots: 2,
            file_pages: 2,
            files: 8,
            request_work: 20_000,
            offered_rps: 400_000.0,
            window: 1_200_000,
            cold_window: 300_000,
            opts: OptConfig::baseline(),
            safe: true,
            ipi: FaultSpec::none(),
            faults: MachineFaults::healthy(),
            seed: 0xf1ee7 + u64::from(machine_id),
            trace_capacity: 1 << 10,
        }
    }

    #[test]
    fn healthy_node_serves_and_is_deterministic() {
        let cfg = tiny(0);
        let a = run_node(&cfg).expect("node runs");
        let b = run_node(&cfg).expect("node runs");
        assert!(a.requests > 0, "no requests served");
        assert_eq!(a.violations, 0);
        assert_eq!(a.boots, 1);
        assert!(a.warm_latency > 0.0);
        assert!(a.shootdowns > 0, "serving must shoot down");
        assert_eq!(a.to_json().render(), b.to_json().render());
    }

    #[test]
    fn crashed_node_reboots_cold_and_accounts_in_flight() {
        let mut cfg = tiny(1);
        cfg.faults.crash_at = Some(500_000);
        cfg.faults.downtime = 100_000;
        let p = run_node(&cfg).expect("node runs");
        assert!(p.crashed);
        assert_eq!(p.boots, 2);
        assert_eq!(p.violations, 0);
        assert!(p.requests > 0, "post-reboot boot must serve again");
        // Cold bucket is fed by both boots' start-up windows.
        assert!(p.cold_latency > 0.0, "cold requests must be observed");
        let healthy = run_node(&tiny(1)).expect("node runs");
        assert!(
            p.requests < healthy.requests,
            "downtime must cost requests: {} !< {}",
            p.requests,
            healthy.requests
        );
    }

    #[test]
    fn churning_node_turns_tenants_over() {
        let mut cfg = tiny(2);
        cfg.faults.churn = true;
        let p = run_node(&cfg).expect("node runs");
        assert!(p.turnovers > 0, "churn slots never turned over");
        assert_eq!(p.violations, 0);
    }

    #[test]
    fn ipi_faults_survive_under_the_watchdog() {
        let mut cfg = tiny(3);
        cfg.ipi = FaultSpec::ipi_drop();
        let p = run_node(&cfg).expect("node runs");
        assert_eq!(p.violations, 0, "drops must never break the contract");
        assert!(p.requests > 0);
    }
}

//! The fleet runner: shard phase 1 over the sweep pool, reduce in
//! canonical machine order, run the serial phase-2 LB, render one
//! canonical JSON document.
//!
//! Determinism argument, in full:
//!
//! 1. Each node profile is a pure function of its `NodeCfg` (seeded
//!    machine sim, no host state), so *what* a job computes is
//!    independent of *where* it runs.
//! 2. Job IDs are zero-padded machine IDs, and the sweep pool reduces
//!    in sorted-ID order, so the profile vector is the same whatever
//!    the thread count or completion order. This holds for any pool
//!    that runs every job exactly once — including the Chase-Lev
//!    work-stealing pool behind [`tlbdown_sweep::run_jobs`], where
//!    node jobs migrate between workers mid-sweep (the steal-pool
//!    rerun in `tests/steal_pool.rs` pins this).
//! 3. The LB phase is serial over that vector with its own seeded RNG
//!    and a `(time, seq)`-ordered event queue.
//!
//! Therefore the rendered fleet document is byte-identical at any
//! `--threads` — which `replay_fleet` checks by running the whole
//! thing twice at different thread counts and comparing bytes.

use tlbdown_core::OptConfig;
use tlbdown_sweep::{run_jobs, Job, Json};
use tlbdown_types::{Cycles, SimError, SimResult};

use crate::fault::{FleetFaultPlan, FleetFaultSpec};
use crate::lb::{LbCfg, LbResult, RequestError};
use crate::node::{run_node, NodeCfg, NodeProfile};

/// Configuration of one fleet run (one cell of the survival matrix, or
/// the headline tier).
#[derive(Clone, Debug)]
pub struct FleetCfg {
    /// Machines in the fleet.
    pub machines: u32,
    /// Sockets per machine.
    pub sockets: u32,
    /// Logical cores per socket.
    pub logical_per_socket: u32,
    /// SMT ways.
    pub smt: u32,
    /// Serving workers per machine.
    pub workers: u32,
    /// Tenant-churn slots per machine (armed by the fault plan).
    pub churn_slots: u32,
    /// Pages per served file.
    pub file_pages: u64,
    /// Distinct files per machine.
    pub files: u64,
    /// Per-request application work, cycles.
    pub request_work: u64,
    /// Offered load per machine inside the node sim, requests/sec.
    pub node_rps: f64,
    /// Offered load across the fleet at the LB, requests/sec.
    pub lb_rps_per_machine: f64,
    /// The shared fleet window, in cycles.
    pub window: u64,
    /// Cold-window length after each (re)boot, cycles.
    pub cold_window: u64,
    /// Optimizations inside every machine's kernel.
    pub opts: OptConfig,
    /// Mitigations on?
    pub safe: bool,
    /// Machine-level fault spec (carries the IPI layer too).
    pub spec: FleetFaultSpec,
    /// Fleet seed; machines and the LB derive their streams from it.
    pub seed: u64,
    /// Trace ring capacity per core (0 disables tracing).
    pub trace_capacity: usize,
}

impl FleetCfg {
    /// A small fleet for tests and the per-cell survival matrix.
    pub fn quick(machines: u32, spec: FleetFaultSpec, seed: u64) -> Self {
        FleetCfg {
            machines,
            sockets: 2,
            logical_per_socket: 8,
            smt: 2,
            workers: 4,
            churn_slots: 2,
            file_pages: 2,
            files: 8,
            request_work: 20_000,
            node_rps: 400_000.0,
            lb_rps_per_machine: 40_000.0,
            window: 1_200_000,
            cold_window: 300_000,
            opts: OptConfig::baseline(),
            safe: true,
            spec,
            seed,
            trace_capacity: 1 << 10,
        }
    }

    /// The headline tier: 1000+ machines on the paper's dual-socket
    /// Xeon topology (2 × 56 logical = 112 cores each), 112k+ simulated
    /// cores in one run.
    pub fn full_tier(spec: FleetFaultSpec, seed: u64) -> Self {
        FleetCfg {
            machines: 1000,
            sockets: 2,
            logical_per_socket: 56,
            smt: 2,
            ..FleetCfg::quick(0, FleetFaultSpec::none(), seed)
        }
        .with_spec(spec)
    }

    /// Builder-style: replace the fault spec.
    #[must_use]
    pub fn with_spec(mut self, spec: FleetFaultSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Total simulated logical cores across the fleet.
    pub fn total_cores(&self) -> u64 {
        u64::from(self.machines) * u64::from(self.sockets) * u64::from(self.logical_per_socket)
    }

    /// The node config for machine `i` under fault row `f`.
    fn node_cfg(&self, i: u32, f: &crate::fault::MachineFaults) -> NodeCfg {
        NodeCfg {
            machine_id: i,
            sockets: self.sockets,
            logical_per_socket: self.logical_per_socket,
            smt: self.smt,
            workers: self.workers,
            churn_slots: self.churn_slots,
            file_pages: self.file_pages,
            files: self.files,
            request_work: self.request_work,
            offered_rps: self.node_rps,
            window: self.window,
            cold_window: self.cold_window,
            opts: self.opts,
            safe: self.safe,
            ipi: self.spec.ipi.clone(),
            faults: f.clone(),
            // Independent per-machine stream, prefix-stable like the plan.
            seed: self.seed ^ u64::from(i + 1).wrapping_mul(0x2545_f491_4f6c_dd1d),
            trace_capacity: self.trace_capacity,
        }
    }
}

/// One finished fleet run: the profiles, the LB ledger, the verdicts.
#[derive(Clone, Debug)]
pub struct FleetResult {
    /// Machines simulated.
    pub machines: u32,
    /// Simulated logical cores across the fleet.
    pub total_cores: u64,
    /// The fleet window, cycles.
    pub window: u64,
    /// Per-machine profiles, canonical order.
    pub profiles: Vec<NodeProfile>,
    /// The LB phase's request ledger.
    pub lb: LbResult,
    /// Machines the fault plan crashed.
    pub crashed: Vec<u32>,
    /// Verdict: every request served or typed-failed.
    pub fully_accounted: bool,
    /// Verdict: zero oracle violations across every machine and boot.
    pub zero_violations: bool,
    /// Verdict: every crashed machine rebooted and served again, or
    /// ended ejected from the LB rotation.
    pub crashed_recovered_or_ejected: bool,
}

impl FleetResult {
    /// All gate verdicts at once.
    pub fn survived(&self) -> bool {
        self.fully_accounted && self.zero_violations && self.crashed_recovered_or_ejected
    }

    /// Served requests per simulated second across the fleet.
    pub fn requests_per_sec(&self) -> f64 {
        self.lb.requests_per_sec(self.window)
    }

    /// Aggregate node-phase numbers (canonical order, so deterministic).
    fn node_totals(&self) -> (u64, u64, u64, u64, u64, u64, u64, f64) {
        let mut requests = 0u64;
        let mut lost = 0u64;
        let mut violations = 0u64;
        let mut turnovers = 0u64;
        let mut boots = 0u64;
        let mut shootdowns = 0u64;
        let mut shoot_cycles = 0u64;
        for p in &self.profiles {
            requests += p.requests;
            lost += p.lost_in_flight;
            violations += p.violations;
            turnovers += p.turnovers;
            boots += u64::from(p.boots);
            shootdowns += p.shootdowns;
            shoot_cycles += p.shootdown_cost_cycles;
        }
        let mean = if shootdowns == 0 {
            0.0
        } else {
            shoot_cycles as f64 / shootdowns as f64
        };
        (
            requests,
            lost,
            violations,
            turnovers,
            boots,
            shootdowns,
            shoot_cycles,
            mean,
        )
    }

    /// Fold of the per-machine digests (canonical order).
    pub fn digest(&self) -> u64 {
        let mut d = 0xcbf2_9ce4_8422_2325u64;
        for p in &self.profiles {
            d ^= p.digest;
            d = d.wrapping_mul(0x0000_0100_0000_01b3);
        }
        d
    }

    /// The canonical sim block: everything here is a pure function of
    /// the fleet config, so replay compares these bytes.
    pub fn sim_json(&self) -> Json {
        let (requests, lost, violations, turnovers, boots, shootdowns, shoot_cycles, mean) =
            self.node_totals();
        Json::obj()
            .with("machines", Json::U64(u64::from(self.machines)))
            .with("total_cores", Json::U64(self.total_cores))
            .with("window", Json::U64(self.window))
            .with(
                "node",
                Json::obj()
                    .with("requests", Json::U64(requests))
                    .with("lost_in_flight", Json::U64(lost))
                    .with("violations", Json::U64(violations))
                    .with("turnovers", Json::U64(turnovers))
                    .with("boots", Json::U64(boots))
                    .with("shootdowns", Json::U64(shootdowns))
                    .with("shootdown_cost_cycles", Json::U64(shoot_cycles))
                    .with("shootdown_cost_mean", Json::F64(mean)),
            )
            .with("lb", self.lb.to_json(self.window))
            .with(
                "verdicts",
                Json::obj()
                    .with("fully_accounted", Json::Bool(self.fully_accounted))
                    .with("zero_violations", Json::Bool(self.zero_violations))
                    .with(
                        "crashed_recovered_or_ejected",
                        Json::Bool(self.crashed_recovered_or_ejected),
                    )
                    .with("crashed_machines", Json::U64(self.crashed.len() as u64))
                    .with("survived", Json::Bool(self.survived())),
            )
            .with("digest", Json::Str(format!("{:016x}", self.digest())))
    }
}

/// Run the whole fleet: phase 1 sharded over `threads` workers, phase 2
/// serial. Returns a typed error if any machine sim fails; a panic in a
/// node job surfaces as `SimError::InvalidArgument` naming the machine
/// (the pool's typed `JobError`), never as a lost machine.
pub fn run_fleet(cfg: &FleetCfg, threads: usize) -> SimResult<FleetResult> {
    let plan = FleetFaultPlan::new(&cfg.spec, cfg.seed, cfg.machines, cfg.window);
    let jobs: Vec<Job<SimResult<NodeProfile>>> = (0..cfg.machines)
        .map(|i| {
            let node = cfg.node_cfg(i, &plan.machines[i as usize]);
            Job::new(format!("m{:05}", i), move || run_node(&node))
        })
        .collect();
    let report = run_jobs(jobs, threads);
    if let Some(f) = report.failures.first() {
        return Err(SimError::InvalidArgument(format!(
            "node job {} panicked: {}",
            f.id, f.message
        )));
    }
    let mut profiles = Vec::with_capacity(report.results.len());
    for r in report.results {
        profiles.push(r.output?);
    }
    // Canonical reduction: results arrive sorted by the zero-padded job
    // ID, which is machine-ID order.
    for (i, p) in profiles.iter().enumerate() {
        assert_eq!(p.machine_id as usize, i, "canonical order broken");
    }

    // Scale the LB's timers to the fleet's observed warm latency.
    let warm_mean = {
        let (sum, n) = profiles
            .iter()
            .filter(|p| p.warm_latency > 0.0)
            .fold((0.0f64, 0u64), |(s, n), p| (s + p.warm_latency, n + 1));
        if n == 0 {
            50_000.0
        } else {
            sum / n as f64
        }
    };
    let lb_cfg = LbCfg::scaled_to(
        warm_mean.ceil() as u64,
        cfg.window,
        cfg.lb_rps_per_machine * f64::from(cfg.machines),
        cfg.seed ^ 0x1b,
    );
    let lb = crate::lb::run_lb(&lb_cfg, &profiles, &plan.machines);

    let crashed: Vec<u32> = plan.crashed().map(|i| i as u32).collect();
    let fully_accounted = lb.fully_accounted();
    let zero_violations = profiles.iter().all(|p| p.violations == 0);
    let crashed_recovered_or_ejected = crashed.iter().all(|&i| {
        let p = &profiles[i as usize];
        p.boots >= 2 || !lb.in_rotation[i as usize]
    });
    Ok(FleetResult {
        machines: cfg.machines,
        total_cores: cfg.total_cores(),
        window: cfg.window,
        profiles,
        lb,
        crashed,
        fully_accounted,
        zero_violations,
        crashed_recovered_or_ejected,
    })
}

/// Run the fleet twice at two thread counts and require byte-identical
/// canonical output. Returns the rendered document on success, the
/// first divergence on failure.
pub fn replay_fleet(cfg: &FleetCfg, threads_a: usize, threads_b: usize) -> SimResult<String> {
    let a = run_fleet(cfg, threads_a)?.sim_json().render();
    let b = run_fleet(cfg, threads_b)?.sim_json().render();
    if a != b {
        let at = a
            .bytes()
            .zip(b.bytes())
            .position(|(x, y)| x != y)
            .unwrap_or(a.len().min(b.len()));
        return Err(SimError::InvalidArgument(format!(
            "fleet replay diverged at byte {at}: {} threads vs {} threads",
            threads_a, threads_b
        )));
    }
    Ok(a)
}

/// Kinds of LB request errors, re-exported for reports.
pub fn error_name(e: RequestError) -> &'static str {
    match e {
        RequestError::TimedOut => "timed_out",
        RequestError::NoHealthyMachine => "no_healthy_machine",
    }
}

/// A fleet run takes `window` simulated cycles; expose it as seconds
/// for report headers.
pub fn window_secs(window: u64) -> f64 {
    window as f64 / Cycles::FREQ_HZ as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbdown_sim::fault::FaultSpec;

    #[test]
    fn quick_fleet_survives_and_replays_byte_identically() {
        let cfg = FleetCfg::quick(6, FleetFaultSpec::none(), 0xbeef);
        let r = run_fleet(&cfg, 1).expect("fleet runs");
        assert!(r.fully_accounted, "accounting must be total");
        assert!(r.zero_violations);
        assert!(r.survived());
        assert!(r.lb.served() > 0);
        let doc = replay_fleet(&cfg, 1, 3).expect("replay matches");
        assert!(doc.contains("\"survived\":true"));
    }

    #[test]
    fn combined_faults_fleet_still_accounts_everything() {
        let cfg = FleetCfg::quick(
            8,
            FleetFaultSpec::combined().with_ipi(FaultSpec::ipi_drop()),
            0xfa11,
        );
        let r = run_fleet(&cfg, 2).expect("fleet runs");
        assert!(r.fully_accounted, "accounting must survive faults");
        assert!(
            r.zero_violations,
            "kernel contract must hold under churn+drop"
        );
        assert!(
            r.crashed_recovered_or_ejected,
            "crashed machines: {:?}, in_rotation: {:?}, boots: {:?}",
            r.crashed,
            r.lb.in_rotation,
            r.profiles.iter().map(|p| p.boots).collect::<Vec<_>>()
        );
        assert!(!r.crashed.is_empty(), "combined spec should crash someone");
    }

    #[test]
    fn fleet_digest_tracks_the_fault_spec() {
        let churn_everywhere = FleetFaultSpec {
            churn_p: 1.0,
            ..FleetFaultSpec::none()
        };
        let a = run_fleet(&FleetCfg::quick(4, FleetFaultSpec::none(), 1), 1).expect("fleet runs");
        let b = run_fleet(&FleetCfg::quick(4, churn_everywhere, 1), 1).expect("fleet runs");
        assert!(
            b.profiles.iter().all(|p| p.turnovers > 0),
            "every machine must churn"
        );
        assert_ne!(a.digest(), b.digest(), "churn must change machine state");
    }
}

//! Phase 2: a deterministic load balancer over the node profiles.
//!
//! The LB is a serial discrete-event simulation: a seeded open-loop
//! arrival stream is dispatched round-robin over the machines the LB
//! currently believes healthy, with per-request timeouts, bounded
//! retries under jittered exponential backoff (the same escalation
//! idiom as the kernel's chaos ladder, one layer up), hedged
//! re-dispatch for tail latency, and periodic health probes that drive
//! machines through Healthy → Ejected → Probation → Healthy.
//!
//! Ground truth about a machine — when it is down, how slowly it
//! serves, whether its link is cut — comes from the phase-1
//! [`NodeProfile`]s plus the shared [`MachineFaults`] plan; the LB only
//! *observes* it through timeouts and probes, like a real balancer.
//! Everything is integer event times plus seeded jitter, ordered by
//! `(time, seq)`, so a fleet run renders byte-identically however the
//! node phase was sharded.
//!
//! Accounting is total: every arrival ends as exactly one of served,
//! served-after-retry, or a typed [`RequestError`]. Nothing is dropped
//! silently — that is the fleet gate's core invariant.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use tlbdown_sim::SplitMix64;
use tlbdown_sweep::Json;
use tlbdown_types::Cycles;

use crate::fault::MachineFaults;
use crate::node::NodeProfile;

/// Load balancer configuration.
#[derive(Clone, Debug)]
pub struct LbCfg {
    /// Fleet ticks over which arrivals are generated (responses and
    /// retries may drain past it).
    pub window: u64,
    /// Offered load across the whole fleet, requests per simulated
    /// second.
    pub fleet_rps: f64,
    /// Ticks before an unanswered dispatch times out.
    pub timeout: u64,
    /// Re-dispatch attempts after the first (0 = no retries).
    pub max_retries: u32,
    /// Base backoff before the first retry; doubles per attempt, with
    /// seeded jitter.
    pub backoff_base: u64,
    /// Ticks after a first dispatch before a hedge copy is sent to a
    /// different machine (0 disables hedging).
    pub hedge_after: u64,
    /// Ticks between health probes of each machine.
    pub probe_interval: u64,
    /// Consecutive observed failures (probe or request) that eject a
    /// machine from rotation.
    pub eject_after: u32,
    /// Consecutive probe successes an ejected machine must string
    /// together (its probation) before rejoining rotation.
    pub probation_acks: u32,
    /// Seed for arrival spacing, jitter and hedge target choice.
    pub seed: u64,
}

impl LbCfg {
    /// Defaults scaled to a warm service latency: timeout at 8×, hedge
    /// at 3×, backoff from 1×.
    pub fn scaled_to(warm_latency: u64, window: u64, fleet_rps: f64, seed: u64) -> Self {
        let warm = warm_latency.max(1_000);
        LbCfg {
            window,
            fleet_rps,
            timeout: warm * 8,
            max_retries: 3,
            backoff_base: warm,
            hedge_after: warm * 3,
            probe_interval: (window / 24).max(1),
            eject_after: 3,
            probation_acks: 2,
            seed,
        }
    }
}

/// Why a request ultimately failed. Typed: the gate requires every
/// non-served request to carry one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum RequestError {
    /// All attempts timed out.
    TimedOut,
    /// No machine was in rotation when a (re)dispatch came due.
    NoHealthyMachine,
}

impl RequestError {
    fn name(self) -> &'static str {
        match self {
            RequestError::TimedOut => "timed_out",
            RequestError::NoHealthyMachine => "no_healthy_machine",
        }
    }
}

/// The LB's belief about one machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LbState {
    /// In rotation.
    Healthy,
    /// Out of rotation; probes keep watching it.
    Ejected,
    /// Probes have started succeeding again; needs `acks` more.
    Probation { acks: u32 },
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Dispatch attempt `attempt` of request `req` (arrival, retry, or
    /// redispatch after NoHealthy backoff).
    Dispatch { req: u32, attempt: u32 },
    /// Machine `machine` answers a dispatch of `req`.
    Response { req: u32, machine: u32, hedge: bool },
    /// Attempt `attempt` of `req` on `machine` went unanswered.
    Timeout {
        req: u32,
        attempt: u32,
        machine: u32,
    },
    /// First dispatch of `req` is still pending: hedge it.
    Hedge { req: u32, attempt: u32 },
    /// Health-check `machine`.
    Probe { machine: u32 },
}

struct QEv {
    time: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for QEv {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for QEv {}
impl PartialOrd for QEv {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEv {
    // Min-heap by (time, seq): BinaryHeap is a max-heap, so reverse.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ReqState {
    Pending,
    Served,
    Failed(RequestError),
}

struct Req {
    arrival: u64,
    state: ReqState,
    retried: bool,
    hedged: bool,
}

struct MachineView {
    faults: MachineFaults,
    /// Warm-path service latency in ticks (profile mean × straggler
    /// factor).
    warm: u64,
    /// Cold-path latency right after the machine's reboot completes.
    cold: u64,
    /// End of the post-reboot cold window, if the machine crashed.
    cold_until: Option<(u64, u64)>,
    capacity: u32,
    outstanding: u32,
    lb: LbState,
    fail_streak: u32,
    dispatched: u64,
    completed: u64,
    ejections: u64,
    rejoins: u64,
}

impl MachineView {
    fn service_latency(&self, t: u64, jitter: f64) -> u64 {
        let base = match self.cold_until {
            Some((s, e)) if t >= s && t < e => self.cold,
            _ => self.warm,
        };
        // Light queueing: latency stretches with load on the machine.
        let load = 1.0 + f64::from(self.outstanding) / f64::from(self.capacity.max(1));
        ((base as f64) * load * jitter).ceil() as u64
    }
}

/// What the LB phase produced: total request accounting plus the
/// machine-state ledger the gate's verdicts read.
#[derive(Clone, Debug)]
pub struct LbResult {
    /// Requests generated over the window.
    pub offered: u64,
    /// Requests served on their first dispatch (hedge wins included).
    pub served_first: u64,
    /// Requests served only after at least one retry.
    pub served_retried: u64,
    /// Requests whose winning response came from a hedge copy.
    pub hedge_wins: u64,
    /// Typed failures by kind, canonically ordered.
    pub failed: Vec<(RequestError, u64)>,
    /// Sum of served request latencies, in ticks.
    pub latency_sum: u64,
    /// Max served request latency, in ticks.
    pub latency_max: u64,
    /// Ejection events across the fleet.
    pub ejections: u64,
    /// Ejected machines that made it back through probation.
    pub rejoins: u64,
    /// Final LB state per machine: true if in rotation (healthy or
    /// probation) at the end.
    pub in_rotation: Vec<bool>,
    /// Per-machine dispatch counts (canonical machine order).
    pub dispatched: Vec<u64>,
}

impl LbResult {
    /// Total requests served.
    pub fn served(&self) -> u64 {
        self.served_first + self.served_retried
    }

    /// Total typed failures.
    pub fn failed_total(&self) -> u64 {
        self.failed.iter().map(|(_, n)| n).sum()
    }

    /// Every request must end served or typed-failed.
    pub fn fully_accounted(&self) -> bool {
        self.served() + self.failed_total() == self.offered
    }

    /// Mean served latency in ticks.
    pub fn latency_mean(&self) -> f64 {
        if self.served() == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.served() as f64
        }
    }

    /// Served requests per simulated second.
    pub fn requests_per_sec(&self, window: u64) -> f64 {
        if window == 0 {
            return 0.0;
        }
        self.served() as f64 * Cycles::FREQ_HZ as f64 / window as f64
    }

    /// Canonical JSON block (fixed key order, deterministic values).
    pub fn to_json(&self, window: u64) -> Json {
        let failed = self
            .failed
            .iter()
            .fold(Json::obj(), |j, (e, n)| j.with(e.name(), Json::U64(*n)));
        Json::obj()
            .with("offered", Json::U64(self.offered))
            .with("served_first", Json::U64(self.served_first))
            .with("served_retried", Json::U64(self.served_retried))
            .with("hedge_wins", Json::U64(self.hedge_wins))
            .with("failed", failed)
            .with("requests_per_sec", Json::F64(self.requests_per_sec(window)))
            .with("latency_mean", Json::F64(self.latency_mean()))
            .with("latency_max", Json::U64(self.latency_max))
            .with("ejections", Json::U64(self.ejections))
            .with("rejoins", Json::U64(self.rejoins))
            .with(
                "in_rotation",
                Json::U64(self.in_rotation.iter().filter(|&&b| b).count() as u64),
            )
    }
}

/// Run the LB phase over `profiles` (canonical machine order) and the
/// matching fault plan rows. Serial and fully deterministic.
pub fn run_lb(cfg: &LbCfg, profiles: &[NodeProfile], faults: &[MachineFaults]) -> LbResult {
    assert_eq!(profiles.len(), faults.len(), "one fault row per profile");
    let mut rng = SplitMix64::new(cfg.seed ^ 0x1b);
    let mut machines: Vec<MachineView> = profiles
        .iter()
        .zip(faults.iter())
        .map(|(p, f)| {
            let warm = if p.warm_latency > 0.0 {
                p.warm_latency
            } else {
                cfg.backoff_base as f64
            };
            let warm = (warm * f.slow_factor).ceil() as u64;
            let cold = if p.cold_latency > p.warm_latency {
                (p.cold_latency * f.slow_factor).ceil() as u64
            } else {
                warm * 2
            };
            let cold_until = f.crash_at.map(|at| {
                let up = at.saturating_add(f.downtime);
                (up, up.saturating_add(cfg.timeout * 2))
            });
            MachineView {
                faults: f.clone(),
                warm: warm.max(1),
                cold: cold.max(1),
                cold_until,
                capacity: p.cores.max(1),
                outstanding: 0,
                lb: LbState::Healthy,
                fail_streak: 0,
                dispatched: 0,
                completed: 0,
                ejections: 0,
                rejoins: 0,
            }
        })
        .collect();

    // Seed the event queue: the open-loop arrival stream and every
    // machine's probe train.
    let mut heap = BinaryHeap::new();
    let mut seq = 0u64;
    let mut push = |heap: &mut BinaryHeap<QEv>, seq: &mut u64, time: u64, ev: Ev| {
        *seq += 1;
        heap.push(QEv {
            time,
            seq: *seq,
            ev,
        });
    };
    let mut reqs: Vec<Req> = Vec::new();
    let interval = Cycles::FREQ_HZ as f64 / cfg.fleet_rps.max(1.0);
    let mut t = 0.0f64;
    loop {
        t += interval * rng.exponential(1.0);
        if t >= cfg.window as f64 {
            break;
        }
        let req = reqs.len() as u32;
        reqs.push(Req {
            arrival: t as u64,
            state: ReqState::Pending,
            retried: false,
            hedged: false,
        });
        push(
            &mut heap,
            &mut seq,
            t as u64,
            Ev::Dispatch { req, attempt: 0 },
        );
    }
    for m in 0..machines.len() as u32 {
        // Stagger probe phase per machine so probe bursts don't align.
        let phase = (u64::from(m).wrapping_mul(0x9e37_79b9)) % cfg.probe_interval.max(1);
        push(&mut heap, &mut seq, phase, Ev::Probe { machine: m });
    }

    let mut rr = 0usize; // round-robin cursor
    let mut out = LbResult {
        offered: reqs.len() as u64,
        served_first: 0,
        served_retried: 0,
        hedge_wins: 0,
        failed: Vec::new(),
        latency_sum: 0,
        latency_max: 0,
        ejections: 0,
        rejoins: 0,
        in_rotation: Vec::new(),
        dispatched: Vec::new(),
    };
    let fail =
        |out: &mut LbResult, e: RequestError| match out.failed.iter_mut().find(|(k, _)| *k == e) {
            Some((_, n)) => *n += 1,
            None => {
                out.failed.push((e, 1));
                out.failed.sort();
            }
        };
    let drain_deadline = cfg.window * 2 + cfg.timeout * (u64::from(cfg.max_retries) + 2);

    while let Some(QEv { time, ev, .. }) = heap.pop() {
        if time > drain_deadline {
            break;
        }
        match ev {
            Ev::Dispatch { req, attempt } => {
                if reqs[req as usize].state != ReqState::Pending {
                    continue;
                }
                // Pick the next in-rotation machine round-robin.
                let n = machines.len();
                let pick = (0..n)
                    .map(|k| (rr + k) % n)
                    .find(|&i| machines[i].lb == LbState::Healthy);
                let Some(i) = pick else {
                    if attempt >= cfg.max_retries {
                        reqs[req as usize].state = ReqState::Failed(RequestError::NoHealthyMachine);
                        fail(&mut out, RequestError::NoHealthyMachine);
                    } else {
                        let backoff = cfg.backoff_base << attempt;
                        let jitter = (backoff as f64 * rng.next_f64() * 0.5) as u64;
                        reqs[req as usize].retried = true;
                        push(
                            &mut heap,
                            &mut seq,
                            time + backoff + jitter,
                            Ev::Dispatch {
                                req,
                                attempt: attempt + 1,
                            },
                        );
                    }
                    continue;
                };
                rr = (i + 1) % n;
                dispatch_to(
                    &mut machines,
                    &mut heap,
                    &mut seq,
                    &mut rng,
                    cfg,
                    time,
                    req,
                    attempt,
                    i as u32,
                    false,
                    &mut push,
                );
                if cfg.hedge_after > 0 && attempt == 0 && !reqs[req as usize].hedged {
                    push(
                        &mut heap,
                        &mut seq,
                        time + cfg.hedge_after,
                        Ev::Hedge { req, attempt },
                    );
                }
            }
            Ev::Hedge { req, attempt } => {
                let r = &mut reqs[req as usize];
                if r.state != ReqState::Pending || r.hedged {
                    continue;
                }
                let n = machines.len();
                let pick = (0..n)
                    .map(|k| (rr + k) % n)
                    .find(|&i| machines[i].lb == LbState::Healthy);
                if let Some(i) = pick {
                    r.hedged = true;
                    rr = (i + 1) % n;
                    dispatch_to(
                        &mut machines,
                        &mut heap,
                        &mut seq,
                        &mut rng,
                        cfg,
                        time,
                        req,
                        attempt,
                        i as u32,
                        true,
                        &mut push,
                    );
                }
            }
            Ev::Response {
                req,
                machine,
                hedge,
            } => {
                let m = &mut machines[machine as usize];
                m.outstanding = m.outstanding.saturating_sub(1);
                m.completed += 1;
                m.fail_streak = 0;
                let r = &mut reqs[req as usize];
                if r.state != ReqState::Pending {
                    continue; // hedge twin already won, or late after failure
                }
                r.state = ReqState::Served;
                if r.retried {
                    out.served_retried += 1;
                } else {
                    out.served_first += 1;
                }
                if hedge {
                    out.hedge_wins += 1;
                }
                let lat = time - r.arrival;
                out.latency_sum += lat;
                out.latency_max = out.latency_max.max(lat);
            }
            Ev::Timeout {
                req,
                attempt,
                machine,
            } => {
                let m = &mut machines[machine as usize];
                m.outstanding = m.outstanding.saturating_sub(1);
                observe_failure(m, cfg, &mut out);
                let r = &mut reqs[req as usize];
                if r.state != ReqState::Pending {
                    continue;
                }
                if attempt >= cfg.max_retries {
                    r.state = ReqState::Failed(RequestError::TimedOut);
                    fail(&mut out, RequestError::TimedOut);
                } else {
                    // Jittered exponential backoff, chaos-ladder style.
                    let backoff = cfg.backoff_base << attempt;
                    let jitter = (backoff as f64 * rng.next_f64() * 0.5) as u64;
                    r.retried = true;
                    push(
                        &mut heap,
                        &mut seq,
                        time + backoff + jitter,
                        Ev::Dispatch {
                            req,
                            attempt: attempt + 1,
                        },
                    );
                }
            }
            Ev::Probe { machine } => {
                let up = machines[machine as usize].faults.reachable_at(time);
                let m = &mut machines[machine as usize];
                match (m.lb, up) {
                    (LbState::Healthy, true) => m.fail_streak = 0,
                    (LbState::Healthy, false) => observe_failure(m, cfg, &mut out),
                    (LbState::Ejected, true) => {
                        m.lb = if cfg.probation_acks <= 1 {
                            m.rejoins += 1;
                            out.rejoins += 1;
                            LbState::Healthy
                        } else {
                            LbState::Probation { acks: 1 }
                        };
                    }
                    (LbState::Ejected, false) => {}
                    (LbState::Probation { acks }, true) => {
                        if acks + 1 >= cfg.probation_acks {
                            m.lb = LbState::Healthy;
                            m.fail_streak = 0;
                            m.rejoins += 1;
                            out.rejoins += 1;
                        } else {
                            m.lb = LbState::Probation { acks: acks + 1 };
                        }
                    }
                    (LbState::Probation { .. }, false) => m.lb = LbState::Ejected,
                }
                // The probe train (and with it the LB's health state)
                // ends with the arrival window; the drain period only
                // settles in-flight requests.
                if time + cfg.probe_interval <= cfg.window {
                    push(
                        &mut heap,
                        &mut seq,
                        time + cfg.probe_interval,
                        Ev::Probe { machine },
                    );
                }
            }
        }
    }

    // Anything still pending when the queue drains (shouldn't happen,
    // but accounting must be total): typed-fail it.
    for r in reqs.iter_mut() {
        if r.state == ReqState::Pending {
            r.state = ReqState::Failed(RequestError::TimedOut);
            fail(&mut out, RequestError::TimedOut);
        }
    }
    out.in_rotation = machines.iter().map(|m| m.lb != LbState::Ejected).collect();
    out.dispatched = machines.iter().map(|m| m.dispatched).collect();
    out
}

/// Send attempt `attempt` of `req` to machine `i` at `time`; schedules
/// either the Response (machine reachable through the service) or the
/// Timeout.
#[allow(clippy::too_many_arguments)]
fn dispatch_to(
    machines: &mut [MachineView],
    heap: &mut BinaryHeap<QEv>,
    seq: &mut u64,
    rng: &mut SplitMix64,
    cfg: &LbCfg,
    time: u64,
    req: u32,
    attempt: u32,
    i: u32,
    hedge: bool,
    push: &mut impl FnMut(&mut BinaryHeap<QEv>, &mut u64, u64, Ev),
) {
    let m = &mut machines[i as usize];
    m.dispatched += 1;
    let jitter = 0.9 + 0.2 * rng.next_f64();
    let svc = m.service_latency(time, jitter);
    let done = time + svc;
    let crash_mid = m
        .faults
        .crash_at
        .map(|at| time < at && at <= done)
        .unwrap_or(false);
    let ok = m.faults.reachable_at(time) && m.faults.reachable_at(done) && !crash_mid;
    m.outstanding += 1;
    if ok && svc < cfg.timeout {
        push(
            heap,
            seq,
            done,
            Ev::Response {
                req,
                machine: i,
                hedge,
            },
        );
    } else {
        push(
            heap,
            seq,
            time + cfg.timeout,
            Ev::Timeout {
                req,
                attempt,
                machine: i,
            },
        );
    }
}

/// A request timeout or failed probe against an in-rotation machine:
/// bump its failure streak and eject it when the streak crosses the
/// threshold.
fn observe_failure(m: &mut MachineView, cfg: &LbCfg, out: &mut LbResult) {
    if m.lb == LbState::Ejected {
        return;
    }
    m.fail_streak += 1;
    if m.fail_streak >= cfg.eject_after {
        if m.lb != LbState::Ejected {
            m.ejections += 1;
            out.ejections += 1;
        }
        m.lb = LbState::Ejected;
        m.fail_streak = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FleetFaultPlan, FleetFaultSpec};
    use tlbdown_sim::Counter;

    fn profile(id: u32, warm: f64) -> NodeProfile {
        NodeProfile {
            machine_id: id,
            cores: 16,
            requests: 1000,
            turnovers: 0,
            lost_in_flight: 0,
            crashed: false,
            boots: 1,
            warm_latency: warm,
            cold_latency: warm * 3.0,
            violations: 0,
            kernel_errors: 0,
            shootdowns: 10,
            shootdown_cost_mean: 20_000.0,
            shootdown_cost_cycles: 200_000,
            sim_cycles: 1_000_000,
            digest: id as u64,
            counters: Counter::new(),
        }
    }

    fn healthy_fleet(n: u32) -> (Vec<NodeProfile>, Vec<MachineFaults>) {
        let profiles = (0..n).map(|i| profile(i, 50_000.0)).collect();
        let faults = vec![MachineFaults::healthy(); n as usize];
        (profiles, faults)
    }

    #[test]
    fn healthy_fleet_serves_everything_first_try() {
        let (profiles, faults) = healthy_fleet(8);
        let cfg = LbCfg::scaled_to(50_000, 40_000_000, 40_000.0, 0x1de);
        let r = run_lb(&cfg, &profiles, &faults);
        assert!(r.offered > 100, "window must generate load: {}", r.offered);
        assert!(r.fully_accounted());
        assert_eq!(
            r.failed_total(),
            0,
            "healthy fleet must not fail: {:?}",
            r.failed
        );
        assert_eq!(r.served_retried, 0);
        assert!(r.in_rotation.iter().all(|&b| b));
    }

    #[test]
    fn lb_is_deterministic() {
        let spec = FleetFaultSpec::combined();
        let n = 16u32;
        let window = 40_000_000u64;
        let plan = FleetFaultPlan::new(&spec, 42, n, window);
        let profiles: Vec<_> = (0..n).map(|i| profile(i, 50_000.0)).collect();
        let cfg = LbCfg::scaled_to(50_000, window, 40_000.0, 7);
        let a = run_lb(&cfg, &profiles, &plan.machines);
        let b = run_lb(&cfg, &profiles, &plan.machines);
        assert_eq!(a.to_json(window).render(), b.to_json(window).render());
        assert_eq!(a.dispatched, b.dispatched);
    }

    #[test]
    fn crashed_machines_are_ejected_and_rejoin_after_recovery() {
        let n = 8u32;
        let window = 40_000_000u64;
        let mut faults = vec![MachineFaults::healthy(); n as usize];
        // Machine 3 goes dark for a quarter of the window, then returns.
        faults[3].crash_at = Some(window / 4);
        faults[3].downtime = window / 4;
        // Machine 5 dies and never comes back inside the window.
        faults[5].crash_at = Some(window / 2);
        faults[5].downtime = window;
        let profiles: Vec<_> = (0..n).map(|i| profile(i, 50_000.0)).collect();
        let cfg = LbCfg::scaled_to(50_000, window, 40_000.0, 11);
        let r = run_lb(&cfg, &profiles, &faults);
        assert!(r.fully_accounted());
        assert!(
            r.ejections >= 2,
            "both crashed machines must eject: {}",
            r.ejections
        );
        assert!(r.rejoins >= 1, "the recovering machine must rejoin");
        assert!(!r.in_rotation[5], "the dead machine must end ejected");
        assert!(
            r.in_rotation[3],
            "the recovered machine must end in rotation"
        );
        assert!(r.served() > 0);
    }

    #[test]
    fn retries_and_hedges_mask_a_flaky_machine() {
        let n = 4u32;
        let window = 40_000_000u64;
        let mut faults = vec![MachineFaults::healthy(); n as usize];
        // One machine partitions for a long stretch mid-window.
        faults[1].partition = Some((window / 8, window / 2));
        let profiles: Vec<_> = (0..n).map(|i| profile(i, 50_000.0)).collect();
        let cfg = LbCfg::scaled_to(50_000, window, 20_000.0, 3);
        let r = run_lb(&cfg, &profiles, &faults);
        assert!(r.fully_accounted());
        assert!(
            r.served_retried > 0 || r.hedge_wins > 0,
            "the partition must be masked by retry or hedge: {:?}",
            (r.served_retried, r.hedge_wins)
        );
        // The masked fleet still serves nearly everything.
        assert!(
            r.failed_total() * 20 <= r.offered,
            "too many failures: {} of {}",
            r.failed_total(),
            r.offered
        );
    }
}

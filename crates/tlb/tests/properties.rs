//! Property tests for the TLB model's flush semantics.

use proptest::prelude::*;
use tlbdown_mem::Pte;
use tlbdown_tlb::Tlb;
use tlbdown_types::{PageSize, Pcid, PhysAddr, PteFlags, VirtAddr};

#[derive(Clone, Debug)]
enum Op {
    Fill { pcid: u16, vpn: u64, global: bool },
    Invlpg { pcid: u16, vpn: u64 },
    InvpcidSingle { pcid: u16, vpn: u64 },
    FlushPcid { pcid: u16 },
    FlushAll { global: bool },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (1u16..4, 0u64..64, any::<bool>())
            .prop_map(|(p, v, g)| Op::Fill { pcid: p, vpn: v, global: g }),
        2 => (1u16..4, 0u64..64).prop_map(|(p, v)| Op::Invlpg { pcid: p, vpn: v }),
        2 => (1u16..4, 0u64..64).prop_map(|(p, v)| Op::InvpcidSingle { pcid: p, vpn: v }),
        1 => (1u16..4).prop_map(|p| Op::FlushPcid { pcid: p }),
        1 => any::<bool>().prop_map(|g| Op::FlushAll { global: g }),
    ]
}

fn pte(global: bool) -> Pte {
    let mut f = PteFlags::user_rw();
    if global {
        f |= PteFlags::GLOBAL;
    }
    Pte::new(PhysAddr::new(0x1000), f)
}

/// A reference model: the set of (tag, vpn) pairs that must be present,
/// where tag = pcid or GLOBAL.
#[derive(Default)]
struct Model {
    entries: std::collections::BTreeSet<(u16, u64)>,
}

const G: u16 = u16::MAX;

impl Model {
    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Fill { pcid, vpn, global } => {
                self.entries.insert((if global { G } else { pcid }, vpn));
            }
            Op::Invlpg { pcid, vpn } => {
                // Current-PCID entry and globals for the address.
                self.entries.remove(&(pcid, vpn));
                self.entries.remove(&(G, vpn));
            }
            Op::InvpcidSingle { pcid, vpn } => {
                self.entries.remove(&(pcid, vpn));
            }
            Op::FlushPcid { pcid } => {
                self.entries.retain(|(t, _)| *t != pcid);
            }
            Op::FlushAll { global } => {
                if global {
                    self.entries.clear();
                } else {
                    self.entries.retain(|(t, _)| *t == G);
                }
            }
        }
    }

    fn lookup(&self, pcid: u16, vpn: u64) -> bool {
        self.entries.contains(&(pcid, vpn)) || self.entries.contains(&(G, vpn))
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The TLB's flush-instruction semantics agree with a simple
    /// set-theoretic reference model (no fractured entries, no capacity
    /// pressure).
    #[test]
    fn flush_semantics_match_reference_model(ops in proptest::collection::vec(arb_op(), 1..80)) {
        let mut tlb = Tlb::new(1 << 16);
        let mut model = Model::default();
        for op in &ops {
            match *op {
                Op::Fill { pcid, vpn, global } => {
                    tlb.fill_speculative(
                        Pcid::new(pcid),
                        VirtAddr::new(vpn << 12),
                        PageSize::Size4K,
                        pte(global),
                    );
                }
                Op::Invlpg { pcid, vpn } => tlb.invlpg(Pcid::new(pcid), VirtAddr::new(vpn << 12)),
                Op::InvpcidSingle { pcid, vpn } => {
                    tlb.invpcid_single(Pcid::new(pcid), VirtAddr::new(vpn << 12))
                }
                Op::FlushPcid { pcid } => tlb.flush_pcid(Pcid::new(pcid)),
                Op::FlushAll { global } => tlb.flush_all(global),
            }
            model.apply(op);
        }
        for pcid in 1u16..4 {
            for vpn in 0u64..64 {
                let got = tlb.lookup(Pcid::new(pcid), VirtAddr::new(vpn << 12)).is_some();
                prop_assert_eq!(
                    got,
                    model.lookup(pcid, vpn),
                    "mismatch at pcid {} vpn {} after {:?}",
                    pcid,
                    vpn,
                    ops
                );
            }
        }
    }

    /// Capacity is a hard bound and eviction only ever shrinks toward it.
    #[test]
    fn capacity_is_respected(cap in 1usize..64, fills in 1u64..256) {
        let mut tlb = Tlb::new(cap);
        for vpn in 0..fills {
            tlb.fill_speculative(
                Pcid::new(1),
                VirtAddr::new(vpn << 12),
                PageSize::Size4K,
                pte(false),
            );
            prop_assert!(tlb.len() <= cap);
        }
        prop_assert_eq!(tlb.len(), (fills as usize).min(cap));
        let evicted = tlb.stats().evictions;
        prop_assert_eq!(evicted, (fills as usize).saturating_sub(cap) as u64);
    }

    /// With any fractured entry cached, any selective flush empties the
    /// TLB entirely (the Table 4 invariant); without one, it never does
    /// (given >1 entries).
    #[test]
    fn fracture_escalation_is_all_or_nothing(
        vpns in proptest::collection::btree_set(0u64..128, 2..32),
        fractured_one in any::<bool>(),
    ) {
        let mut tlb = Tlb::new(1 << 16);
        let vpns: Vec<u64> = vpns.into_iter().collect();
        for (i, vpn) in vpns.iter().enumerate() {
            tlb.insert_nested(
                Pcid::new(1),
                VirtAddr::new(vpn << 12),
                PageSize::Size4K,
                pte(false),
                fractured_one && i == 0,
            );
        }
        tlb.invlpg(Pcid::new(1), VirtAddr::new(vpns[vpns.len() - 1] << 12));
        if fractured_one {
            prop_assert!(tlb.is_empty(), "fracture flag must force a full flush");
            prop_assert_eq!(tlb.stats().fracture_escalations, 1);
        } else {
            prop_assert_eq!(tlb.len(), vpns.len() - 1);
            prop_assert_eq!(tlb.stats().fracture_escalations, 0);
        }
    }
}

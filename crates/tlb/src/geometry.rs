//! TLB geometry: set/way organisation per page size.
//!
//! The historical model is one unified, fully-shared FIFO pool sized like
//! a Skylake STLB (1536 entries). That hides the phenomenon the paper's
//! huge-page experiments (§7, Table 4) turn on: a 2M mapping covers 512
//! pages with *one* entry in a small dedicated array, so fracturing it
//! back to 4K multiplies pressure on the (also small, set-indexed) 4K
//! structures — conflict misses appear that a fully-associative pool can
//! never show.
//!
//! [`TlbGeometry::legacy`] keeps the historical pool exactly — the
//! byte-identical default. [`TlbGeometry::skylake_sp`] is a faithful
//! two-level, set-associative hierarchy with per-page-size geometries
//! taken from the values Skylake-SP reports in CPUID leaf 0x18
//! (deterministic address-translation parameters):
//!
//! | structure      | entries | ways | sets |
//! |----------------|---------|------|------|
//! | L1 DTLB 4K     | 64      | 4    | 16   |
//! | L1 DTLB 2M/4M  | 32      | 4    | 8    |
//! | L1 DTLB 1G     | 4       | 4    | 1    |
//! | STLB 4K+2M     | 1536    | 12   | 128  |
//! | STLB 1G        | 16      | 4    | 4    |
//!
//! The model is inclusive: the L1 arrays cache a subset of the STLB, so
//! presence ("is this translation cached?") is decided by the STLB level
//! and the L1 level only modulates hit cost ([`SetAssocGeometry::
//! stlb_hit_extra`], the measured ~9-cycle Skylake STLB-hit penalty,
//! rounded to the model's granularity). Replacement is FIFO within each
//! set, matching the legacy pool's policy so the two models differ only
//! in *where* capacity pressure lands.

/// One set-associative structure: `sets × ways` entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetWays {
    /// Number of sets (1 = fully associative).
    pub sets: u32,
    /// Ways per set.
    pub ways: u32,
}

impl SetWays {
    /// Total entries.
    pub fn capacity(self) -> u32 {
        self.sets * self.ways
    }
}

/// Geometry of the two-level set-associative hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetAssocGeometry {
    /// First-level DTLB for 4K pages.
    pub l1_4k: SetWays,
    /// First-level DTLB for 2M pages.
    pub l1_2m: SetWays,
    /// First-level DTLB for 1G pages.
    pub l1_1g: SetWays,
    /// Unified second-level TLB shared by 4K and 2M pages.
    pub stlb_4k_2m: SetWays,
    /// Dedicated second-level TLB for 1G pages.
    pub stlb_1g: SetWays,
    /// Extra access cycles when a translation hits the STLB but not the
    /// L1 array (the Skylake STLB-hit penalty).
    pub stlb_hit_extra: u64,
}

/// How a [`crate::Tlb`] organises its entries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TlbGeometry {
    /// One unified, fully-shared FIFO pool — the historical model and the
    /// pinned byte-identical default.
    Legacy {
        /// Pool capacity in entries.
        capacity: usize,
    },
    /// Two-level set-associative hierarchy with per-page-size geometries.
    SetAssoc(SetAssocGeometry),
}

impl TlbGeometry {
    /// The historical unified pool at the default (Skylake-STLB-sized)
    /// capacity.
    pub fn legacy() -> Self {
        TlbGeometry::Legacy {
            capacity: crate::model::DEFAULT_CAPACITY,
        }
    }

    /// Skylake-SP geometry from CPUID leaf 0x18 (see module docs).
    pub fn skylake_sp() -> Self {
        TlbGeometry::SetAssoc(SetAssocGeometry {
            l1_4k: SetWays { sets: 16, ways: 4 },
            l1_2m: SetWays { sets: 8, ways: 4 },
            l1_1g: SetWays { sets: 1, ways: 4 },
            stlb_4k_2m: SetWays {
                sets: 128,
                ways: 12,
            },
            stlb_1g: SetWays { sets: 4, ways: 4 },
            stlb_hit_extra: 9,
        })
    }

    /// Short label for tables and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            TlbGeometry::Legacy { .. } => "legacy",
            TlbGeometry::SetAssoc(_) => "skylake",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "legacy" => Some(Self::legacy()),
            "skylake" => Some(Self::skylake_sp()),
            _ => None,
        }
    }
}

impl Default for TlbGeometry {
    fn default() -> Self {
        Self::legacy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skylake_tables_match_cpuid() {
        let TlbGeometry::SetAssoc(g) = TlbGeometry::skylake_sp() else {
            panic!("skylake is set-associative");
        };
        assert_eq!(g.l1_4k.capacity(), 64);
        assert_eq!(g.l1_2m.capacity(), 32);
        assert_eq!(g.l1_1g.capacity(), 4);
        assert_eq!(g.stlb_4k_2m.capacity(), 1536);
        assert_eq!(g.stlb_1g.capacity(), 16);
    }

    #[test]
    fn legacy_matches_historical_capacity() {
        let TlbGeometry::Legacy { capacity } = TlbGeometry::legacy() else {
            panic!("legacy is a pool");
        };
        assert_eq!(capacity, 1536);
    }

    #[test]
    fn labels_round_trip() {
        for s in ["legacy", "skylake"] {
            assert_eq!(TlbGeometry::parse(s).unwrap().label(), s);
        }
        assert!(TlbGeometry::parse("alder-lake").is_none());
    }
}

//! The TLB data structure and its flush-instruction semantics.

use std::collections::{HashMap, HashSet, VecDeque};

use tlbdown_mem::{AddrSpace, Pte};
use tlbdown_types::{CostModel, Cycles, PageSize, Pcid, PhysAddr, VirtAddr};

use crate::geometry::{SetAssocGeometry, TlbGeometry};

/// Tag used in entry keys for global entries (matched under any PCID).
const GLOBAL_TAG: u16 = u16::MAX;

/// Default unified TLB capacity, sized like a Skylake STLB.
pub const DEFAULT_CAPACITY: usize = 1536;
/// Default ITLB capacity.
pub const DEFAULT_ITLB_CAPACITY: usize = 128;
/// Default paging-structure cache capacity.
pub const DEFAULT_PWC_CAPACITY: usize = 32;

/// One cached translation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Base virtual address of the mapped page.
    pub page_base: VirtAddr,
    /// Size of the mapped page.
    pub size: PageSize,
    /// PCID this entry was filled under (meaningless if `global`).
    pub pcid: Pcid,
    /// Whether the entry matches under any PCID.
    pub global: bool,
    /// Snapshot of the page-table entry at fill time. The kernel's safety
    /// oracle compares this against the live page tables.
    pub pte: Pte,
    /// Whether the entry was created by a fractured nested walk
    /// (2MB guest page over 4KB host pages — §7 / Table 4).
    pub fractured: bool,
    /// Monotone fill sequence number (FIFO replacement & staleness checks).
    pub fill_seq: u64,
}

type Key = (u16, u64, u8);

fn size_idx(s: PageSize) -> u8 {
    match s {
        PageSize::Size4K => 0,
        PageSize::Size2M => 1,
        PageSize::Size1G => 2,
    }
}

fn key_for(pcid_tag: u16, va: VirtAddr, size: PageSize) -> Key {
    (pcid_tag, va.align_down(size).as_u64(), size_idx(size))
}

fn size_shift(idx: u8) -> u32 {
    match idx {
        0 => 12,
        1 => 21,
        _ => 30,
    }
}

/// STLB slot for a key: structure id (0 = unified 4K/2M, 1 = 1G) plus the
/// set index, and that structure's associativity. Sets are indexed by the
/// virtual page number at the page's native shift, like hardware — entries
/// from different PCIDs compete for the same set.
fn stlb_slot(g: &SetAssocGeometry, key: &Key) -> ((u8, u32), u32) {
    let (_, base, idx) = *key;
    let vpn = base >> size_shift(idx);
    let (structure, sw) = if idx == 2 {
        (1u8, g.stlb_1g)
    } else {
        (0u8, g.stlb_4k_2m)
    };
    ((structure, (vpn % u64::from(sw.sets)) as u32), sw.ways)
}

/// L1 slot for a key: one structure per page size.
fn l1_slot(g: &SetAssocGeometry, key: &Key) -> ((u8, u32), u32) {
    let (_, base, idx) = *key;
    let vpn = base >> size_shift(idx);
    let sw = match idx {
        0 => g.l1_4k,
        1 => g.l1_2m,
        _ => g.l1_1g,
    };
    ((idx, (vpn % u64::from(sw.sets)) as u32), sw.ways)
}

/// Why a TLB access could not complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbFault {
    /// No present mapping for the address.
    NotPresent,
    /// A mapping exists but forbids the access (e.g. write to CoW page).
    Protection,
}

/// Result of a successful TLB access.
#[derive(Clone, Debug)]
pub struct Access {
    /// Translated physical address.
    pub pa: PhysAddr,
    /// Whether the access hit the TLB (false = filled by a page walk).
    pub hit: bool,
    /// Cycle cost of the access, including any page walk.
    pub cost: Cycles,
    /// The entry used or created, for oracle checks.
    pub entry: TlbEntry,
}

/// Counters for one TLB.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Accesses satisfied from the TLB.
    pub hits: u64,
    /// Accesses requiring a page walk.
    pub misses: u64,
    /// Entries inserted.
    pub fills: u64,
    /// Entries removed by any flush.
    pub entries_invalidated: u64,
    /// Selective (single-address) flush operations executed as requested.
    pub selective_flushes: u64,
    /// Full flushes executed as requested (CR3 write / flush_all).
    pub full_flushes: u64,
    /// Selective flushes escalated to full flushes by the fracture flag.
    pub fracture_escalations: u64,
    /// Complete paging-structure-cache wipes (INVLPG side-effect).
    pub pwc_flushes: u64,
    /// Entries dropped because a permission re-walk replaced them.
    pub perm_rewalks: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
    /// Times the fractured-entry accounting was found inconsistent and
    /// repaired (a residue after a full wipe, or a decrement below
    /// zero). Always zero in a correct model; checked in release builds
    /// too, where the old `debug_assert` would have let a stuck fracture
    /// flag silently escalate every later selective flush.
    pub fracture_leaks: u64,
    /// Hits that missed the L1 arrays and paid the STLB penalty. Always
    /// zero under the legacy single-pool geometry.
    pub stlb_hits: u64,
}

/// A small instruction-TLB model.
///
/// The ITLB only matters for one rule in the paper: the CoW optimization
/// must be skipped for executable PTEs because a data write does not evict
/// ITLB entries (§4.1). The model is therefore minimal: fill on fetch,
/// invalidate on the same flush operations as the dTLB, and *not* on data
/// accesses.
#[derive(Debug, Default)]
pub struct ItlbModel {
    entries: HashMap<Key, TlbEntry>,
}

impl ItlbModel {
    /// Look up a cached instruction translation.
    pub fn lookup(&self, pcid: Pcid, va: VirtAddr) -> Option<&TlbEntry> {
        for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            if let Some(e) = self.entries.get(&key_for(pcid.0, va, size)) {
                return Some(e);
            }
            if let Some(e) = self.entries.get(&key_for(GLOBAL_TAG, va, size)) {
                return Some(e);
            }
        }
        None
    }

    fn insert(&mut self, e: TlbEntry) {
        let tag = if e.global { GLOBAL_TAG } else { e.pcid.0 };
        self.entries.insert(key_for(tag, e.page_base, e.size), e);
    }

    fn invalidate_addr(&mut self, pcid_tag: Option<u16>, va: VirtAddr, and_globals: bool) {
        for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            if let Some(tag) = pcid_tag {
                self.entries.remove(&key_for(tag, va, size));
            }
            if and_globals {
                self.entries.remove(&key_for(GLOBAL_TAG, va, size));
            }
        }
    }

    fn flush_pcid(&mut self, pcid: Pcid) {
        self.entries.retain(|(tag, _, _), _| *tag != pcid.0);
    }

    fn flush_all(&mut self, include_global: bool) {
        if include_global {
            self.entries.clear();
        } else {
            self.entries.retain(|(tag, _, _), _| *tag == GLOBAL_TAG);
        }
    }

    /// Number of cached instruction translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ITLB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A per-core TLB with PCID tagging, a paging-structure cache and an ITLB.
///
/// # Examples
///
/// ```
/// use tlbdown_tlb::Tlb;
/// use tlbdown_mem::Pte;
/// use tlbdown_types::{PageSize, Pcid, PhysAddr, PteFlags, VirtAddr};
///
/// let mut tlb = Tlb::default();
/// let pte = Pte::new(PhysAddr::new(0x5000), PteFlags::user_rw());
/// tlb.fill_speculative(Pcid::new(1), VirtAddr::new(0x1000), PageSize::Size4K, pte);
/// assert!(tlb.lookup(Pcid::new(1), VirtAddr::new(0x1234)).is_some());
/// // Entries are PCID-tagged: another address space misses.
/// assert!(tlb.lookup(Pcid::new(2), VirtAddr::new(0x1234)).is_none());
/// // INVLPG removes the translation (and wipes the paging-structure cache).
/// tlb.invlpg(Pcid::new(1), VirtAddr::new(0x1000));
/// assert!(tlb.lookup(Pcid::new(1), VirtAddr::new(0x1234)).is_none());
/// ```
#[derive(Debug)]
pub struct Tlb {
    geometry: TlbGeometry,
    capacity: usize,
    entries: HashMap<Key, TlbEntry>,
    fifo: VecDeque<Key>,
    // Set-associative state, unused (and empty) under the legacy geometry.
    // `entries` stays the single source of truth for presence; these index
    // it per (structure, set) for replacement, and `l1` marks the subset
    // cached in the first-level arrays (inclusive hierarchy).
    set_fifo: HashMap<(u8, u32), VecDeque<Key>>,
    set_occ: HashMap<(u8, u32), u32>,
    l1: HashSet<Key>,
    l1_fifo: HashMap<(u8, u32), VecDeque<Key>>,
    l1_occ: HashMap<(u8, u32), u32>,
    split_blind_invlpg: bool,
    fill_seq: u64,
    fractured_count: usize,
    pwc: HashMap<(u16, u64), u64>,
    pwc_fifo: VecDeque<(u16, u64)>,
    pwc_capacity: usize,
    itlb: ItlbModel,
    stats: TlbStats,
}

impl Default for Tlb {
    fn default() -> Self {
        Self::new(DEFAULT_CAPACITY)
    }
}

impl Tlb {
    /// Create a TLB with the given unified capacity (legacy geometry).
    pub fn new(capacity: usize) -> Self {
        Self::with_geometry(TlbGeometry::Legacy { capacity })
    }

    /// Create a TLB with an explicit geometry.
    pub fn with_geometry(geometry: TlbGeometry) -> Self {
        let capacity = match &geometry {
            TlbGeometry::Legacy { capacity } => *capacity,
            // Under set-associative geometry capacity pressure is per set;
            // the pool bound is the STLB total so the legacy eviction loop
            // can never fire first.
            TlbGeometry::SetAssoc(g) => (g.stlb_4k_2m.capacity() + g.stlb_1g.capacity()) as usize,
        };
        Tlb {
            geometry,
            capacity,
            entries: HashMap::new(),
            fifo: VecDeque::new(),
            set_fifo: HashMap::new(),
            set_occ: HashMap::new(),
            l1: HashSet::new(),
            l1_fifo: HashMap::new(),
            l1_occ: HashMap::new(),
            split_blind_invlpg: false,
            fill_seq: 0,
            fractured_count: 0,
            pwc: HashMap::new(),
            pwc_fifo: VecDeque::new(),
            pwc_capacity: DEFAULT_PWC_CAPACITY,
            itlb: ItlbModel::default(),
            stats: TlbStats::default(),
        }
    }

    /// The geometry this TLB is organised as.
    pub fn geometry(&self) -> &TlbGeometry {
        &self.geometry
    }

    /// Inject the split-blind flush bug: selective flushes only remove the
    /// 4K-sized entry for the address, as if the flush loop walked the
    /// range at 4K stride assuming a huge-page split already removed the
    /// huge-grained entries. Full flushes are unaffected. Used by the
    /// `buggy_fracture` checker canary.
    pub fn set_split_blind_invlpg(&mut self, buggy: bool) {
        self.split_blind_invlpg = buggy;
    }

    /// Whether a translation is cached in the first-level arrays (always
    /// false under the legacy geometry, which has no levels).
    pub fn in_l1(&self, pcid: Pcid, va: VirtAddr, size: PageSize) -> bool {
        self.l1.contains(&key_for(pcid.0, va, size))
            || self.l1.contains(&key_for(GLOBAL_TAG, va, size))
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Reset statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Count a hit observed by an external lookup path (used by access
    /// models, like the nested-translation CPU, that call [`Tlb::lookup`]
    /// directly).
    pub fn record_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Count a miss observed by an external lookup path.
    pub fn record_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no translations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether any cached entry is fractured (the inferred Intel flag
    /// behind Table 4's full-flush behaviour).
    pub fn fracture_flag(&self) -> bool {
        self.fractured_count > 0
    }

    /// The ITLB.
    pub fn itlb(&self) -> &ItlbModel {
        &self.itlb
    }

    /// Iterate over all cached data translations (oracle checks).
    pub fn iter_entries(&self) -> impl Iterator<Item = &TlbEntry> {
        self.entries.values()
    }

    /// Look up the cached translation for `(pcid, va)`, if any.
    pub fn lookup(&self, pcid: Pcid, va: VirtAddr) -> Option<&TlbEntry> {
        for size in [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G] {
            if let Some(e) = self.entries.get(&key_for(pcid.0, va, size)) {
                return Some(e);
            }
            if let Some(e) = self.entries.get(&key_for(GLOBAL_TAG, va, size)) {
                return Some(e);
            }
        }
        None
    }

    /// Drop one fractured entry from the count without wrapping: a
    /// decrement below zero means the accounting already broke, so it is
    /// recorded and skipped instead of underflowing `usize` in release.
    fn uncount_fractured(&mut self) {
        if self.fractured_count == 0 {
            self.stats.fracture_leaks += 1;
        } else {
            self.fractured_count -= 1;
        }
    }

    fn remove_key(&mut self, key: &Key) -> Option<TlbEntry> {
        let e = self.entries.remove(key)?;
        if e.fractured {
            self.uncount_fractured();
        }
        if let TlbGeometry::SetAssoc(g) = &self.geometry {
            let (slot, _) = stlb_slot(g, key);
            if let Some(occ) = self.set_occ.get_mut(&slot) {
                *occ = occ.saturating_sub(1);
            }
            if self.l1.remove(key) {
                let (slot, _) = l1_slot(g, key);
                if let Some(occ) = self.l1_occ.get_mut(&slot) {
                    *occ = occ.saturating_sub(1);
                }
            }
        }
        self.stats.entries_invalidated += 1;
        Some(e)
    }

    /// Promote a (present) translation into its L1 array, evicting the
    /// FIFO-oldest L1 resident of that set. L1 eviction only drops the L1
    /// residency bit — the entry stays in the STLB (inclusive hierarchy).
    fn l1_promote(&mut self, key: Key) {
        let TlbGeometry::SetAssoc(g) = &self.geometry else {
            return;
        };
        if !self.l1.insert(key) {
            return;
        }
        let (slot, ways) = l1_slot(g, &key);
        self.l1_fifo.entry(slot).or_default().push_back(key);
        *self.l1_occ.entry(slot).or_insert(0) += 1;
        while self.l1_occ.get(&slot).copied().unwrap_or(0) > ways {
            let Some(victim) = self.l1_fifo.get_mut(&slot).and_then(|q| q.pop_front()) else {
                break;
            };
            if self.l1.remove(&victim) {
                *self.l1_occ.get_mut(&slot).expect("occupied slot") -= 1;
            }
        }
    }

    /// Insert an entry, evicting FIFO-oldest entries on capacity pressure —
    /// pool-wide under the legacy geometry, per STLB set under a
    /// set-associative one.
    pub fn insert(&mut self, mut e: TlbEntry) {
        self.fill_seq += 1;
        e.fill_seq = self.fill_seq;
        let tag = if e.global { GLOBAL_TAG } else { e.pcid.0 };
        let key = key_for(tag, e.page_base, e.size);
        if e.fractured {
            self.fractured_count += 1;
        }
        let set_slot = match &self.geometry {
            TlbGeometry::Legacy { .. } => None,
            TlbGeometry::SetAssoc(g) => Some(stlb_slot(g, &key)),
        };
        if let Some(old) = self.entries.insert(key, e) {
            if old.fractured {
                self.uncount_fractured();
            }
        } else if let Some((slot, _)) = set_slot {
            self.set_fifo.entry(slot).or_default().push_back(key);
            *self.set_occ.entry(slot).or_insert(0) += 1;
        } else {
            self.fifo.push_back(key);
        }
        self.stats.fills += 1;
        if let Some((slot, ways)) = set_slot {
            while self.set_occ.get(&slot).copied().unwrap_or(0) > ways {
                let Some(victim) = self.set_fifo.get_mut(&slot).and_then(|q| q.pop_front()) else {
                    break;
                };
                if self.entries.contains_key(&victim) {
                    self.remove_key(&victim);
                    self.stats.evictions += 1;
                    // Evictions are not flush invalidations.
                    self.stats.entries_invalidated -= 1;
                }
            }
            self.l1_promote(key);
        } else {
            while self.entries.len() > self.capacity {
                if let Some(victim) = self.fifo.pop_front() {
                    if self.entries.contains_key(&victim) {
                        self.remove_key(&victim);
                        self.stats.evictions += 1;
                        // Evictions are not flush invalidations.
                        self.stats.entries_invalidated -= 1;
                    }
                } else {
                    break;
                }
            }
        }
    }

    /// Record a speculative fill: the CPU is architecturally free to cache
    /// a PTE any time it is present in the page tables, in particular
    /// between a page fault being raised and the kernel updating the PTE
    /// (the §4.1 hazard).
    pub fn fill_speculative(&mut self, pcid: Pcid, page_base: VirtAddr, size: PageSize, pte: Pte) {
        self.insert(TlbEntry {
            page_base,
            size,
            pcid,
            global: pte.global(),
            pte,
            fractured: false,
            fill_seq: 0,
        });
    }

    // --- Paging-structure cache ---

    /// Whether the PWC covers the upper levels of a walk for `(pcid, va)`.
    pub fn pwc_hit(&self, pcid: Pcid, va: VirtAddr) -> bool {
        self.pwc.contains_key(&(pcid.0, va.as_u64() >> 21))
    }

    fn pwc_insert(&mut self, pcid: Pcid, va: VirtAddr) {
        let key = (pcid.0, va.as_u64() >> 21);
        if self.pwc.insert(key, self.fill_seq).is_none() {
            self.pwc_fifo.push_back(key);
            while self.pwc.len() > self.pwc_capacity {
                if let Some(victim) = self.pwc_fifo.pop_front() {
                    self.pwc.remove(&victim);
                } else {
                    break;
                }
            }
        }
    }

    fn pwc_flush_all(&mut self) {
        if !self.pwc.is_empty() {
            self.stats.pwc_flushes += 1;
        }
        self.pwc.clear();
        self.pwc_fifo.clear();
    }

    /// Number of live paging-structure-cache entries.
    pub fn pwc_len(&self) -> usize {
        self.pwc.len()
    }

    // --- Flush instructions ---

    /// Escalate a selective flush to a full flush because a fractured entry
    /// is (or may be) cached — the Table 4 behaviour.
    fn fracture_escalate(&mut self) {
        self.stats.fracture_escalations += 1;
        let keys: Vec<Key> = self.entries.keys().copied().collect();
        for k in &keys {
            self.remove_key(k);
        }
        self.fifo.clear();
        self.set_fifo.clear();
        self.set_occ.clear();
        self.l1.clear();
        self.l1_fifo.clear();
        self.l1_occ.clear();
        self.itlb.flush_all(true);
        self.pwc_flush_all();
        // Every entry was just removed, so any residue is an accounting
        // bug — and a sticky one: it would pin the fracture flag and
        // escalate every future selective flush to a full flush. Repair
        // and record it (in release builds too) rather than asserting
        // only in debug builds.
        if self.fractured_count != 0 {
            self.stats.fracture_leaks += 1;
            self.fractured_count = 0;
        }
    }

    /// `INVLPG`: invalidate the translation for `va` in the *current*
    /// address space, including global entries for that address, and — the
    /// documented x86 side-effect the paper leans on in §3.4/§4.1 — flush
    /// the entire paging-structure cache.
    ///
    /// If the fracture flag is set, the flush escalates to a full TLB flush
    /// (Table 4).
    pub fn invlpg(&mut self, current: Pcid, va: VirtAddr) {
        if self.fracture_flag() {
            self.fracture_escalate();
            return;
        }
        self.stats.selective_flushes += 1;
        for &size in self.flushed_sizes() {
            let k = key_for(current.0, va, size);
            self.remove_key(&k);
            let kg = key_for(GLOBAL_TAG, va, size);
            self.remove_key(&kg);
        }
        self.itlb.invalidate_addr(Some(current.0), va, true);
        self.pwc_flush_all();
    }

    /// Page sizes a selective flush removes. The split-blind bug drops
    /// only the 4K-sized entry, leaving any covering huge-page entry
    /// cached — the stale-2M hazard the `buggy_fracture` canary exists to
    /// catch.
    fn flushed_sizes(&self) -> &'static [PageSize] {
        if self.split_blind_invlpg {
            &[PageSize::Size4K]
        } else {
            &[PageSize::Size4K, PageSize::Size2M, PageSize::Size1G]
        }
    }

    /// `INVPCID` individual-address mode: invalidate the translation for
    /// `(pcid, va)` — global entries and unrelated paging-structure-cache
    /// entries are *not* touched (§3.4 notes this makes it safer than
    /// `INVLPG` for operating systems that rely on PWC flushes).
    pub fn invpcid_single(&mut self, pcid: Pcid, va: VirtAddr) {
        if self.fracture_flag() {
            self.fracture_escalate();
            return;
        }
        self.stats.selective_flushes += 1;
        for &size in self.flushed_sizes() {
            let k = key_for(pcid.0, va, size);
            self.remove_key(&k);
        }
        self.itlb.invalidate_addr(Some(pcid.0), va, false);
        // Only the PWC entries belonging to this address are dropped.
        self.pwc.remove(&(pcid.0, va.as_u64() >> 21));
    }

    /// CR3 write: flush all non-global entries of `pcid` (a full flush of
    /// one address space), keeping global entries.
    pub fn flush_pcid(&mut self, pcid: Pcid) {
        self.stats.full_flushes += 1;
        let keys: Vec<Key> = self
            .entries
            .keys()
            .filter(|(tag, _, _)| *tag == pcid.0)
            .copied()
            .collect();
        for k in &keys {
            self.remove_key(k);
        }
        self.itlb.flush_pcid(pcid);
        let pcid_raw = pcid.0;
        self.pwc.retain(|(tag, _), _| *tag != pcid_raw);
    }

    /// Flush everything; `include_global` models toggling CR4.PGE.
    pub fn flush_all(&mut self, include_global: bool) {
        self.stats.full_flushes += 1;
        let keys: Vec<Key> = self
            .entries
            .keys()
            .filter(|(tag, _, _)| include_global || *tag != GLOBAL_TAG)
            .copied()
            .collect();
        for k in &keys {
            self.remove_key(k);
        }
        self.itlb.flush_all(include_global);
        self.pwc_flush_all();
    }

    // --- Access paths ---

    /// Perform a data access: translate `(pcid, va)` for a read or write at
    /// the given privilege, filling from `space`'s page tables on a miss.
    ///
    /// On a hit the cached entry is used *without consulting the page
    /// tables* — exactly the hardware behaviour that makes shootdowns
    /// necessary. A hit whose cached permissions forbid the access is
    /// dropped and re-walked (architectural behaviour; the mechanism behind
    /// the §4.1 CoW trick).
    pub fn access(
        &mut self,
        pcid: Pcid,
        va: VirtAddr,
        write: bool,
        user: bool,
        space: &mut AddrSpace,
        costs: &CostModel,
    ) -> Result<Access, TlbFault> {
        if let Some(e) = self.lookup(pcid, va).cloned() {
            if e.pte.flags.permits(write, false, user) {
                self.stats.hits += 1;
                let tag = if e.global { GLOBAL_TAG } else { e.pcid.0 };
                let key = key_for(tag, e.page_base, e.size);
                let mut cost = costs.mem_access;
                if let TlbGeometry::SetAssoc(g) = &self.geometry {
                    if !self.l1.contains(&key) {
                        // Present only at the second level: pay the STLB
                        // penalty and promote into the L1 array.
                        cost = Cycles(cost.0 + g.stlb_hit_extra);
                        self.stats.stlb_hits += 1;
                        self.l1_promote(key);
                    }
                }
                let pa = e.pte.addr.add(va.page_offset(e.size));
                return Ok(Access {
                    pa,
                    hit: true,
                    cost,
                    entry: e,
                });
            }
            // Permission mismatch: drop the stale entry and re-walk.
            let tag = if e.global { GLOBAL_TAG } else { e.pcid.0 };
            let k = key_for(tag, e.page_base, e.size);
            self.remove_key(&k);
            self.stats.perm_rewalks += 1;
        }
        self.walk_and_fill(pcid, va, write, user, space, costs, false)
    }

    /// Perform an instruction fetch through the ITLB.
    pub fn fetch(
        &mut self,
        pcid: Pcid,
        va: VirtAddr,
        user: bool,
        space: &mut AddrSpace,
        costs: &CostModel,
    ) -> Result<Access, TlbFault> {
        if let Some(e) = self.itlb.lookup(pcid, va).cloned() {
            if e.pte.flags.permits(false, true, user) {
                self.stats.hits += 1;
                let pa = e.pte.addr.add(va.page_offset(e.size));
                return Ok(Access {
                    pa,
                    hit: true,
                    cost: costs.mem_access,
                    entry: e,
                });
            }
        }
        let walk = space.walk(va).map_err(|_| TlbFault::NotPresent)?;
        if !walk.pte.flags.permits(false, true, user) {
            return Err(TlbFault::Protection);
        }
        let entry = TlbEntry {
            page_base: walk.page_base,
            size: walk.size,
            pcid,
            global: walk.pte.global(),
            pte: walk.pte,
            fractured: false,
            fill_seq: 0,
        };
        self.itlb.insert(entry.clone());
        self.stats.misses += 1;
        let cost = costs.mem_access + costs.page_walk_pwc_miss;
        let pa = walk.translate(va);
        Ok(Access {
            pa,
            hit: false,
            cost,
            entry,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_and_fill(
        &mut self,
        pcid: Pcid,
        va: VirtAddr,
        write: bool,
        user: bool,
        space: &mut AddrSpace,
        costs: &CostModel,
        fractured: bool,
    ) -> Result<Access, TlbFault> {
        let walk = space.walk(va).map_err(|_| TlbFault::NotPresent)?;
        if !walk.pte.flags.permits(write, false, user) {
            return Err(TlbFault::Protection);
        }
        let walk_cost = if self.pwc_hit(pcid, va) {
            costs.page_walk_pwc_hit
        } else {
            costs.page_walk_pwc_miss
        };
        space.mark_used(va, write).expect("walked page must exist");
        // The snapshot must reflect the A/D update the MMU just performed.
        let (pte, _) = space.entry(va).expect("walked page must exist");
        let entry = TlbEntry {
            page_base: walk.page_base,
            size: walk.size,
            pcid,
            global: pte.global(),
            pte,
            fractured,
            fill_seq: 0,
        };
        self.insert(entry.clone());
        self.pwc_insert(pcid, va);
        self.stats.misses += 1;
        Ok(Access {
            pa: walk.translate(va),
            hit: false,
            cost: costs.mem_access + walk_cost,
            entry,
        })
    }

    /// Insert a pre-composed (possibly fractured) translation, as the
    /// nested-walk hardware of `tlbdown-virt` produces.
    pub fn insert_nested(
        &mut self,
        pcid: Pcid,
        page_base: VirtAddr,
        size: PageSize,
        pte: Pte,
        fractured: bool,
    ) {
        self.insert(TlbEntry {
            page_base,
            size,
            pcid,
            global: false,
            pte,
            fractured,
            fill_seq: 0,
        });
        self.pwc_insert(pcid, page_base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbdown_mem::{FrameState, PhysMem};
    use tlbdown_types::PteFlags;

    fn setup() -> (PhysMem, AddrSpace, Tlb, CostModel) {
        let mut mem = PhysMem::new(1 << 20);
        let space = AddrSpace::new(&mut mem).unwrap();
        (mem, space, Tlb::default(), CostModel::default())
    }

    fn map_user_page(mem: &mut PhysMem, s: &mut AddrSpace, va: u64) -> PhysAddr {
        let pa = mem.alloc(FrameState::UserPage).unwrap();
        s.map(
            mem,
            VirtAddr::new(va),
            pa,
            PageSize::Size4K,
            PteFlags::user_rw(),
        )
        .unwrap();
        pa
    }

    const P: Pcid = Pcid(1);

    #[test]
    fn miss_then_hit() {
        let (mut mem, mut s, mut tlb, costs) = setup();
        let pa = map_user_page(&mut mem, &mut s, 0x1000);
        let a1 = tlb
            .access(P, VirtAddr::new(0x1234), false, true, &mut s, &costs)
            .unwrap();
        assert!(!a1.hit);
        assert_eq!(a1.pa, pa.add(0x234));
        let a2 = tlb
            .access(P, VirtAddr::new(0x1678), false, true, &mut s, &costs)
            .unwrap();
        assert!(a2.hit);
        assert_eq!(a2.pa, pa.add(0x678));
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
        assert!(a2.cost < a1.cost);
    }

    #[test]
    fn hit_ignores_page_table_changes() {
        // The raison d'être of shootdowns: a cached entry keeps translating
        // to the old frame after the PTE changes.
        let (mut mem, mut s, mut tlb, costs) = setup();
        let pa_old = map_user_page(&mut mem, &mut s, 0x1000);
        tlb.access(P, VirtAddr::new(0x1000), false, true, &mut s, &costs)
            .unwrap();
        let pa_new = mem.alloc(FrameState::UserPage).unwrap();
        s.update_entry(VirtAddr::new(0x1000), |p| Pte::new(pa_new, p.flags))
            .unwrap();
        let a = tlb
            .access(P, VirtAddr::new(0x1000), false, true, &mut s, &costs)
            .unwrap();
        assert!(a.hit);
        assert_eq!(a.pa, pa_old, "stale entry still used — that's the hazard");
    }

    #[test]
    fn invlpg_removes_entry_and_flushes_pwc() {
        let (mut mem, mut s, mut tlb, costs) = setup();
        map_user_page(&mut mem, &mut s, 0x1000);
        map_user_page(&mut mem, &mut s, 0x40_0000);
        tlb.access(P, VirtAddr::new(0x1000), false, true, &mut s, &costs)
            .unwrap();
        tlb.access(P, VirtAddr::new(0x40_0000), false, true, &mut s, &costs)
            .unwrap();
        assert!(tlb.pwc_len() >= 2);
        tlb.invlpg(P, VirtAddr::new(0x1000));
        assert!(tlb.lookup(P, VirtAddr::new(0x1000)).is_none());
        assert!(tlb.lookup(P, VirtAddr::new(0x40_0000)).is_some());
        assert_eq!(tlb.pwc_len(), 0, "INVLPG wipes the whole PWC");
        assert_eq!(tlb.stats().pwc_flushes, 1);
    }

    #[test]
    fn invpcid_preserves_unrelated_pwc() {
        let (mut mem, mut s, mut tlb, costs) = setup();
        map_user_page(&mut mem, &mut s, 0x1000);
        map_user_page(&mut mem, &mut s, 0x40_0000);
        tlb.access(P, VirtAddr::new(0x1000), false, true, &mut s, &costs)
            .unwrap();
        tlb.access(P, VirtAddr::new(0x40_0000), false, true, &mut s, &costs)
            .unwrap();
        let pwc_before = tlb.pwc_len();
        tlb.invpcid_single(P, VirtAddr::new(0x1000));
        assert!(tlb.lookup(P, VirtAddr::new(0x1000)).is_none());
        assert_eq!(
            tlb.pwc_len(),
            pwc_before - 1,
            "only the target's PWC entry drops"
        );
    }

    #[test]
    fn invpcid_does_not_flush_globals() {
        let (mut mem, mut s, mut tlb, _costs) = setup();
        let pa = mem.alloc(FrameState::KernelPage).unwrap();
        s.map(
            &mut mem,
            VirtAddr::new(0x9000),
            pa,
            PageSize::Size4K,
            PteFlags::kernel_rw(true),
        )
        .unwrap();
        tlb.fill_speculative(
            P,
            VirtAddr::new(0x9000),
            PageSize::Size4K,
            Pte::new(pa, PteFlags::kernel_rw(true)),
        );
        tlb.invpcid_single(P, VirtAddr::new(0x9000));
        assert!(
            tlb.lookup(P, VirtAddr::new(0x9000)).is_some(),
            "global survives INVPCID"
        );
        tlb.invlpg(P, VirtAddr::new(0x9000));
        assert!(
            tlb.lookup(P, VirtAddr::new(0x9000)).is_none(),
            "INVLPG drops globals"
        );
    }

    #[test]
    fn flush_pcid_keeps_globals_and_other_pcids() {
        let (mut mem, mut s, mut tlb, costs) = setup();
        map_user_page(&mut mem, &mut s, 0x1000);
        tlb.access(P, VirtAddr::new(0x1000), false, true, &mut s, &costs)
            .unwrap();
        tlb.access(Pcid(2), VirtAddr::new(0x1000), false, true, &mut s, &costs)
            .unwrap();
        let gpa = mem.alloc(FrameState::KernelPage).unwrap();
        tlb.fill_speculative(
            P,
            VirtAddr::new(0x8000),
            PageSize::Size4K,
            Pte::new(gpa, PteFlags::kernel_rw(true)),
        );
        tlb.flush_pcid(P);
        assert!(tlb.lookup(P, VirtAddr::new(0x1000)).is_none());
        assert!(tlb.lookup(Pcid(2), VirtAddr::new(0x1000)).is_some());
        assert!(
            tlb.lookup(P, VirtAddr::new(0x8000)).is_some(),
            "global survives CR3 write"
        );
        tlb.flush_all(true);
        assert!(tlb.is_empty());
    }

    #[test]
    fn write_to_write_protected_entry_rewalks() {
        let (mut mem, mut s, mut tlb, costs) = setup();
        let va = VirtAddr::new(0x2000);
        let pa = mem.alloc(FrameState::UserPage).unwrap();
        s.map(&mut mem, va, pa, PageSize::Size4K, PteFlags::user_cow())
            .unwrap();
        // Read fills a read-only entry.
        tlb.access(P, va, false, true, &mut s, &costs).unwrap();
        // Kernel performs the CoW swap: new frame, writable.
        let pa2 = mem.alloc(FrameState::UserPage).unwrap();
        s.update_entry(va, |_| Pte::new(pa2, PteFlags::user_rw()))
            .unwrap();
        // A write cannot use the stale read-only entry: hardware re-walks.
        let a = tlb.access(P, va, true, true, &mut s, &costs).unwrap();
        assert!(!a.hit);
        assert_eq!(a.pa, pa2);
        assert_eq!(tlb.stats().perm_rewalks, 1);
        // And the fresh writable entry is now cached.
        let a = tlb.access(P, va, true, true, &mut s, &costs).unwrap();
        assert!(a.hit);
    }

    #[test]
    fn protection_fault_when_tables_forbid() {
        let (mut mem, mut s, mut tlb, costs) = setup();
        let va = VirtAddr::new(0x3000);
        let pa = mem.alloc(FrameState::UserPage).unwrap();
        s.map(&mut mem, va, pa, PageSize::Size4K, PteFlags::user_cow())
            .unwrap();
        assert_eq!(
            tlb.access(P, va, true, true, &mut s, &costs).unwrap_err(),
            TlbFault::Protection
        );
        assert_eq!(
            tlb.access(P, VirtAddr::new(0x0dea_d000), false, true, &mut s, &costs)
                .unwrap_err(),
            TlbFault::NotPresent
        );
    }

    #[test]
    fn accessed_and_dirty_bits_set_on_fill() {
        let (mut mem, mut s, mut tlb, costs) = setup();
        let va = VirtAddr::new(0x4000);
        map_user_page(&mut mem, &mut s, 0x4000);
        tlb.access(P, va, true, true, &mut s, &costs).unwrap();
        let (pte, _) = s.entry(va).unwrap();
        assert!(pte.flags.contains(PteFlags::ACCESSED));
        assert!(pte.dirty());
        // The cached snapshot includes the D bit.
        assert!(tlb.lookup(P, va).unwrap().pte.dirty());
    }

    #[test]
    fn capacity_eviction_is_fifo() {
        let (mut mem, mut s, _tlb, costs) = setup();
        let mut tlb = Tlb::new(4);
        for i in 0..6u64 {
            map_user_page(&mut mem, &mut s, 0x10_0000 + i * 0x1000);
            tlb.access(
                P,
                VirtAddr::new(0x10_0000 + i * 0x1000),
                false,
                true,
                &mut s,
                &costs,
            )
            .unwrap();
        }
        assert_eq!(tlb.len(), 4);
        assert_eq!(tlb.stats().evictions, 2);
        assert!(
            tlb.lookup(P, VirtAddr::new(0x10_0000)).is_none(),
            "oldest evicted"
        );
        assert!(
            tlb.lookup(P, VirtAddr::new(0x10_5000)).is_some(),
            "newest kept"
        );
    }

    #[test]
    fn fracture_flag_escalates_selective_flush() {
        let (mut mem, _s, mut tlb, _costs) = setup();
        let pa = mem.alloc(FrameState::UserPage).unwrap();
        tlb.insert_nested(
            P,
            VirtAddr::new(0x20_0000),
            PageSize::Size4K,
            Pte::new(pa, PteFlags::user_rw()),
            true,
        );
        tlb.insert_nested(
            P,
            VirtAddr::new(0x30_0000),
            PageSize::Size4K,
            Pte::new(pa, PteFlags::user_rw()),
            false,
        );
        assert!(tlb.fracture_flag());
        // Selective flush of an *unrelated* address wipes everything.
        tlb.invlpg(P, VirtAddr::new(0x5000_0000));
        assert!(tlb.is_empty());
        assert!(!tlb.fracture_flag());
        assert_eq!(tlb.stats().fracture_escalations, 1);
        assert_eq!(tlb.stats().selective_flushes, 0);
    }

    #[test]
    fn no_escalation_without_fractured_entries() {
        let (mut mem, mut s, mut tlb, costs) = setup();
        map_user_page(&mut mem, &mut s, 0x1000);
        tlb.access(P, VirtAddr::new(0x1000), false, true, &mut s, &costs)
            .unwrap();
        tlb.invlpg(P, VirtAddr::new(0x7000));
        assert_eq!(tlb.stats().fracture_escalations, 0);
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn itlb_unaffected_by_data_access_but_flushed_by_invlpg() {
        let (mut mem, mut s, mut tlb, costs) = setup();
        let va = VirtAddr::new(0x5000);
        let pa = mem.alloc(FrameState::UserPage).unwrap();
        s.map(&mut mem, va, pa, PageSize::Size4K, PteFlags::user_rx())
            .unwrap();
        tlb.fetch(P, va, true, &mut s, &costs).unwrap();
        assert_eq!(tlb.itlb().len(), 1);
        // Data accesses do not touch the ITLB (the §4.1 executable-PTE rule).
        let va2 = VirtAddr::new(0x6000);
        map_user_page(&mut mem, &mut s, 0x6000);
        tlb.access(P, va2, true, true, &mut s, &costs).unwrap();
        assert_eq!(tlb.itlb().len(), 1);
        tlb.invlpg(P, va);
        assert_eq!(tlb.itlb().len(), 0);
    }

    #[test]
    fn set_assoc_evicts_within_the_conflicting_set() {
        let (mut mem, mut s, _tlb, costs) = setup();
        let mut tlb = Tlb::with_geometry(TlbGeometry::skylake_sp());
        // 13 pages whose 4K VPNs all map to STLB set 0 (vpn % 128 == 0)
        // overflow the 12-way set while the pool is nowhere near full.
        for k in 0..13u64 {
            let va = 0x40_0000 + k * 128 * 0x1000;
            map_user_page(&mut mem, &mut s, va);
            tlb.access(P, VirtAddr::new(va), false, true, &mut s, &costs)
                .unwrap();
        }
        assert_eq!(tlb.len(), 12, "set capacity, not pool capacity, binds");
        assert_eq!(tlb.stats().evictions, 1);
        assert!(
            tlb.lookup(P, VirtAddr::new(0x40_0000)).is_none(),
            "set-FIFO oldest evicted"
        );
        // A page in a different set is untouched by that pressure.
        map_user_page(&mut mem, &mut s, 0x41_0000);
        tlb.access(P, VirtAddr::new(0x41_0000), false, true, &mut s, &costs)
            .unwrap();
        assert_eq!(tlb.stats().evictions, 1);
    }

    #[test]
    fn l1_miss_pays_stlb_penalty_then_promotes() {
        let (mut mem, mut s, _tlb, costs) = setup();
        let mut tlb = Tlb::with_geometry(TlbGeometry::skylake_sp());
        // 5 pages sharing L1-4K set 0 (vpn % 16 == 0) overflow its 4 ways;
        // their STLB sets (vpn % 128) are all distinct, so every entry
        // stays present and only L1 residency is lost.
        for k in 0..5u64 {
            let va = 0x40_0000 + k * 16 * 0x1000;
            map_user_page(&mut mem, &mut s, va);
            tlb.access(P, VirtAddr::new(va), false, true, &mut s, &costs)
                .unwrap();
        }
        assert_eq!(tlb.len(), 5);
        let first = VirtAddr::new(0x40_0000);
        assert!(!tlb.in_l1(P, first, PageSize::Size4K), "L1-evicted");
        let slow = tlb.access(P, first, false, true, &mut s, &costs).unwrap();
        assert!(slow.hit);
        assert_eq!(slow.cost, Cycles(costs.mem_access.0 + 9));
        assert_eq!(tlb.stats().stlb_hits, 1);
        // Promoted back: the next access is an L1 hit at base cost.
        let fast = tlb.access(P, first, false, true, &mut s, &costs).unwrap();
        assert_eq!(fast.cost, costs.mem_access);
        assert_eq!(tlb.stats().stlb_hits, 1);
    }

    #[test]
    fn split_blind_invlpg_leaves_huge_entry_cached() {
        let (mut mem, _s, mut tlb, _costs) = setup();
        let pa = mem.alloc(FrameState::UserPage).unwrap();
        let huge = VirtAddr::new(0x20_0000);
        tlb.fill_speculative(P, huge, PageSize::Size2M, Pte::new(pa, PteFlags::user_rw()));
        // A correct flush removes the covering 2M entry.
        tlb.invlpg(P, VirtAddr::new(0x20_3000));
        assert!(tlb.lookup(P, VirtAddr::new(0x20_3000)).is_none());
        // The split-blind flush only strips the 4K-sized key: the huge
        // entry survives and keeps translating.
        tlb.fill_speculative(P, huge, PageSize::Size2M, Pte::new(pa, PteFlags::user_rw()));
        tlb.set_split_blind_invlpg(true);
        tlb.invlpg(P, VirtAddr::new(0x20_3000));
        assert!(
            tlb.lookup(P, VirtAddr::new(0x20_3000)).is_some(),
            "stale 2M entry survives the buggy flush"
        );
        // Full flushes are not split-blind.
        tlb.flush_all(true);
        assert!(tlb.is_empty());
    }

    #[test]
    fn legacy_geometry_has_no_l1_or_stlb_penalty() {
        let (mut mem, mut s, mut tlb, costs) = setup();
        map_user_page(&mut mem, &mut s, 0x1000);
        tlb.access(P, VirtAddr::new(0x1000), false, true, &mut s, &costs)
            .unwrap();
        let a = tlb
            .access(P, VirtAddr::new(0x1000), false, true, &mut s, &costs)
            .unwrap();
        assert_eq!(a.cost, costs.mem_access);
        assert_eq!(tlb.stats().stlb_hits, 0);
        assert!(!tlb.in_l1(P, VirtAddr::new(0x1000), PageSize::Size4K));
    }

    #[test]
    fn speculative_fill_creates_stale_entry() {
        let (mut mem, mut s, mut tlb, costs) = setup();
        let va = VirtAddr::new(0x7000);
        let pa = map_user_page(&mut mem, &mut s, 0x7000);
        // CPU speculatively caches the PTE without any program access.
        let (pte, _) = s.entry(va).unwrap();
        tlb.fill_speculative(P, va, PageSize::Size4K, pte);
        // PTE changes; the speculative entry still hits.
        let pa2 = mem.alloc(FrameState::UserPage).unwrap();
        s.update_entry(va, |p| Pte::new(pa2, p.flags)).unwrap();
        let a = tlb.access(P, va, false, true, &mut s, &costs).unwrap();
        assert!(a.hit);
        assert_eq!(a.pa, pa);
    }
}

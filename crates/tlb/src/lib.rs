//! A per-core TLB model with x86 semantics.
//!
//! The model covers everything the paper's techniques depend on:
//!
//! - **PCID tagging** (§2.1): entries are tagged with the address-space id
//!   they were filled under; global entries match under any PCID.
//! - **Flush instructions** (§2.1, §3.4): [`Tlb::invlpg`] (current-PCID
//!   single-address, also drops global entries for that address and — per
//!   the Intel SDM behaviour the paper highlights — flushes the *entire*
//!   paging-structure cache), [`Tlb::invpcid_single`] (any-PCID
//!   single-address, leaves unrelated paging-structure entries alone),
//!   [`Tlb::flush_pcid`] (CR3-write full flush of one PCID, keeps globals)
//!   and [`Tlb::flush_all`].
//! - **Paging-structure cache** (PWC): accelerates walks; its invalidation
//!   side-effects are what make the CoW optimization (§4.1) profitable.
//! - **Architectural permission re-walk**: a write that hits a
//!   write-protected entry cannot use it; the hardware drops the entry and
//!   re-walks (this is the mechanism the CoW optimization leans on).
//! - **Speculative fills**: the model exposes [`Tlb::fill_speculative`] so
//!   tests can emulate the CPU caching a PTE between fault delivery and the
//!   kernel's PTE update (the §4.1 hazard motivating the explicit access).
//! - **Page fracturing** (§7, Table 4): entries created through a
//!   2MB-guest-over-4KB-host nested walk are marked *fractured*; while any
//!   fractured entry is cached, a selective flush escalates to a full flush,
//!   which is the undocumented behaviour Table 4 measures.
//! - A small separate **ITLB**, so the §4.1 rule "skip the CoW optimization
//!   for executable PTEs" has an observable reason.

pub mod geometry;
pub mod model;

pub use geometry::{SetAssocGeometry, SetWays, TlbGeometry};
pub use model::{Access, ItlbModel, Tlb, TlbEntry, TlbFault, TlbStats};

//! Events driving the machine.

use tlbdown_apic::Vector;
use tlbdown_core::{FlushTlbInfo, ShootdownId};
use tlbdown_types::CoreId;

/// A simulation event. All kernel activity is decomposed into these; the
/// deterministic engine orders them.
#[derive(Debug)]
pub enum Event {
    /// Step the core's current execution frame. Carries a token so that
    /// resumes invalidated by an interleaving interrupt are dropped.
    Resume {
        /// Core to step.
        core: CoreId,
        /// Must match the core's current resume token.
        token: u64,
    },
    /// An IPI reaches a core's local APIC.
    IpiArrive {
        /// Destination core.
        core: CoreId,
        /// Delivered vector.
        vector: Vector,
    },
    /// An NMI reaches a core (failure injection / §3.2 hazard tests).
    NmiArrive {
        /// Destination core.
        core: CoreId,
    },
    /// A LATR-style deferred flush becomes due on a core.
    LazyFlushDue {
        /// Core that must now apply the flush.
        core: CoreId,
        /// The deferred work.
        info: FlushTlbInfo,
    },
    /// The csd-lock watchdog checks on a spin-waiting initiator (armed
    /// when the IPIs go out; a no-op if every ack arrived in time).
    CsdWatchdog {
        /// The spin-waiting initiator.
        initiator: CoreId,
        /// The shootdown being watched.
        id: ShootdownId,
        /// How many re-sends this watchdog chain has already issued.
        resends: u32,
        /// How many times the storm detector already widened this
        /// chain's timeout (bounded; see `StormDetectorConfig`).
        widened: u32,
    },
    /// Degraded recovery: force a conservative full flush + ack on a
    /// responder that never answered its (re-sent) IPIs.
    ForcedFullFlush {
        /// The unresponsive responder.
        core: CoreId,
        /// The stalled shootdown.
        id: ShootdownId,
    },
}

impl Event {
    /// Whether this event may race a nearby event under schedule
    /// exploration (see `tlbdown_sim::sched`): interrupt arrivals, whose
    /// modelled delivery latency is an estimate — an IPI or NMI landing a
    /// few hundred cycles earlier or later than the point estimate is a
    /// physically legal execution the checker must cover. Everything else
    /// (resumes, watchdogs, deferred flushes) is causally anchored to the
    /// issuing core's own progress and only branches on exact ties.
    pub fn race_eligible(&self) -> bool {
        matches!(self, Event::IpiArrive { .. } | Event::NmiArrive { .. })
    }

    /// The core this event executes on — its partition key for the
    /// engine's partitioned front-end (core → socket/cluster). Every
    /// event variant is anchored to exactly one core: resumes, arrivals
    /// and deferred flushes name their destination; watchdogs run on the
    /// spin-waiting initiator.
    pub fn core(&self) -> CoreId {
        match *self {
            Event::Resume { core, .. }
            | Event::IpiArrive { core, .. }
            | Event::NmiArrive { core }
            | Event::LazyFlushDue { core, .. }
            | Event::ForcedFullFlush { core, .. } => core,
            Event::CsdWatchdog { initiator, .. } => initiator,
        }
    }
}

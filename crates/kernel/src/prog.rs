//! User programs: the workload interface.
//!
//! A [`Prog`] is a small state machine: each time the core is ready to
//! execute the next user-level step, the kernel calls [`Prog::next`] with
//! a [`ProgCtx`] carrying the result of the previous action (e.g. the
//! address returned by `mmap`). Programs run entirely in user mode; the
//! kernel turns [`ProgAction`]s into simulated instructions, page faults
//! and system calls.

use tlbdown_types::{Cycles, VirtAddr};

use crate::mm::FileId;

/// A system call a program can issue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Syscall {
    /// Map `pages` of private anonymous memory; returns the address.
    MmapAnon {
        /// Number of 4KB pages.
        pages: u64,
    },
    /// Map `pages` of a file; returns the address.
    MmapFile {
        /// Backing file.
        file: FileId,
        /// Offset into the file, in pages.
        page_offset: u64,
        /// Number of 4KB pages.
        pages: u64,
        /// `MAP_SHARED` when true, `MAP_PRIVATE` (CoW) when false.
        shared: bool,
    },
    /// Unmap `[addr, addr + pages*4K)`.
    Munmap {
        /// Start address.
        addr: VirtAddr,
        /// Number of 4KB pages.
        pages: u64,
    },
    /// `madvise(MADV_DONTNEED)` on the range.
    MadviseDontNeed {
        /// Start address.
        addr: VirtAddr,
        /// Number of 4KB pages.
        pages: u64,
    },
    /// `msync`: write back dirty pages of the range (write-protects and
    /// cleans their PTEs — the flush-heavy writeback path).
    Msync {
        /// Start address.
        addr: VirtAddr,
        /// Number of 4KB pages.
        pages: u64,
    },
    /// `fdatasync`: write back every dirty page of the file through all
    /// mapping VMAs of the calling mm (the Sysbench §5.2 path).
    Fdatasync {
        /// File to write back.
        file: FileId,
    },
    /// `send`-style kernel read of a user buffer (the Apache §5.3 path:
    /// the kernel touches user memory, exercising kernel-PCID entries).
    Send {
        /// Start address.
        addr: VirtAddr,
        /// Number of 4KB pages.
        pages: u64,
    },
    /// `mprotect` changing writability of the range.
    Mprotect {
        /// Start address.
        addr: VirtAddr,
        /// Number of 4KB pages.
        pages: u64,
        /// New writability.
        write: bool,
    },
}

/// The next step a program wants to take.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgAction {
    /// Execute for `0` cycles — ask again immediately (internal
    /// bookkeeping steps).
    Nop,
    /// Burn CPU for the given number of cycles.
    Compute(Cycles),
    /// Load or store one location.
    Access {
        /// Virtual address.
        va: VirtAddr,
        /// Whether the access is a store.
        write: bool,
    },
    /// Fetch/execute an instruction at the address (exercises the ITLB).
    Fetch {
        /// Virtual address.
        va: VirtAddr,
    },
    /// Issue a system call; its result arrives in [`ProgCtx::retval`].
    Syscall(Syscall),
    /// Yield the CPU to the next thread pinned to this core.
    Yield,
    /// Terminate the thread.
    Exit,
}

/// Context handed to a program on each step.
#[derive(Clone, Debug, Default)]
pub struct ProgCtx {
    /// Result of the previous action (e.g. the address `mmap` returned, as
    /// a raw u64), 0 otherwise.
    pub retval: u64,
    /// Current simulated time (for self-measuring workloads).
    pub now: Cycles,
}

/// A user program.
pub trait Prog {
    /// Produce the next action. `ctx.retval` carries the result of the
    /// previous action.
    fn next(&mut self, ctx: &ProgCtx) -> ProgAction;
}

/// A trivial program executing a fixed script (useful in tests).
#[derive(Debug)]
pub struct ScriptProg {
    script: Vec<ProgAction>,
    idx: usize,
    /// Return values observed after each step (for test assertions).
    pub retvals: Vec<u64>,
}

impl ScriptProg {
    /// Run the given actions in order, then exit.
    pub fn new(script: Vec<ProgAction>) -> Self {
        ScriptProg {
            script,
            idx: 0,
            retvals: Vec::new(),
        }
    }
}

impl Prog for ScriptProg {
    fn next(&mut self, ctx: &ProgCtx) -> ProgAction {
        self.retvals.push(ctx.retval);
        let a = self
            .script
            .get(self.idx)
            .copied()
            .unwrap_or(ProgAction::Exit);
        self.idx += 1;
        a
    }
}

/// A program that spins forever in user mode (the microbenchmark's
/// "responder" thread, §5.1).
#[derive(Debug, Default)]
pub struct BusyLoopProg;

impl Prog for BusyLoopProg {
    fn next(&mut self, _ctx: &ProgCtx) -> ProgAction {
        ProgAction::Compute(Cycles::new(200))
    }
}

/// The canonical shootdown generator: mmap `pages` of anonymous memory,
/// touch every page, `madvise(MADV_DONTNEED)` the range, and repeat
/// `iters` times. Each iteration zaps live PTEs and so forces one full
/// shootdown against every core sharing the mm — the §5.1 initiator
/// shape, reused by the chaos harness and benches.
#[derive(Debug)]
pub struct MadviseLoopProg {
    pages: u64,
    iters: u64,
    state: u32,
    addr: u64,
    touch: u64,
    iter: u64,
}

impl MadviseLoopProg {
    /// Loop over `pages` pages for `iters` iterations.
    pub fn new(pages: u64, iters: u64) -> Self {
        MadviseLoopProg {
            pages,
            iters,
            state: 0,
            addr: 0,
            touch: 0,
            iter: 0,
        }
    }
}

impl Prog for MadviseLoopProg {
    fn next(&mut self, ctx: &ProgCtx) -> ProgAction {
        match self.state {
            0 => {
                self.state = 1;
                ProgAction::Syscall(Syscall::MmapAnon { pages: self.pages })
            }
            1 => {
                self.addr = ctx.retval;
                self.touch = 0;
                self.state = 2;
                ProgAction::Nop
            }
            2 => {
                if self.touch < self.pages {
                    let va = VirtAddr::new(self.addr + self.touch * 4096);
                    self.touch += 1;
                    ProgAction::Access { va, write: true }
                } else {
                    self.state = 3;
                    ProgAction::Syscall(Syscall::MadviseDontNeed {
                        addr: VirtAddr::new(self.addr),
                        pages: self.pages,
                    })
                }
            }
            3 => {
                self.iter += 1;
                if self.iter >= self.iters {
                    ProgAction::Exit
                } else {
                    self.touch = 0;
                    self.state = 2;
                    ProgAction::Nop
                }
            }
            _ => ProgAction::Exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_prog_replays_then_exits() {
        let mut p = ScriptProg::new(vec![
            ProgAction::Compute(Cycles::new(10)),
            ProgAction::Access {
                va: VirtAddr::new(0x1000),
                write: false,
            },
        ]);
        let ctx = ProgCtx::default();
        assert_eq!(p.next(&ctx), ProgAction::Compute(Cycles::new(10)));
        assert_eq!(
            p.next(&ctx),
            ProgAction::Access {
                va: VirtAddr::new(0x1000),
                write: false
            }
        );
        assert_eq!(p.next(&ctx), ProgAction::Exit);
        assert_eq!(p.next(&ctx), ProgAction::Exit);
    }

    #[test]
    fn busy_loop_never_exits() {
        let mut p = BusyLoopProg;
        let ctx = ProgCtx::default();
        for _ in 0..10 {
            assert!(matches!(p.next(&ctx), ProgAction::Compute(_)));
        }
    }
}

//! The simulated kernel: a Linux-5.2.8-like memory-management subsystem
//! running on the `tlbdown` machine model.
//!
//! [`Machine`] owns everything: the discrete-event engine, per-core TLBs,
//! the coherence directory, the IPI fabric, address spaces with real radix
//! page tables, and per-core execution state. User programs (implementors
//! of [`prog::Prog`]) run on cores and issue memory accesses and system
//! calls; the kernel services them with the same structure as Linux:
//!
//! - `mmap` / `munmap` / `mprotect` / `madvise(DONTNEED)` / `msync` /
//!   `fdatasync`-style writeback ([`machine::Machine`] syscall paths),
//! - demand paging and CoW via the page-fault handler,
//! - TLB shootdowns through the SMP layer, with every optimization of the
//!   paper switchable via [`tlbdown_core::OptConfig`],
//! - PTI ("safe mode"): dual PCIDs, double flushes, trampoline costs,
//! - lazy-TLB mode and `tlb_gen` tracking,
//! - an optional LATR-style *lazy shootdown* mode
//!   ([`config::KernelConfig::lazy_latr`]) reproducing the related-work
//!   behaviour the paper argues is hazardous,
//! - the [`oracle`]: a safety checker that flags any user-mode access
//!   translating through a TLB entry whose removal the kernel has already
//!   guaranteed,
//! - deterministic event tracing (the `trace` feature, on by default):
//!   [`machine::Machine::start_tracing`] records typed `tlbdown_trace`
//!   events — shootdown phases, IPIs, flushes, page walks, cacheline
//!   transfers — without perturbing simulation state.

pub mod chaos;
pub mod config;
pub mod cpu;
pub mod digest;
pub mod event;
mod exec;
pub mod machine;
pub mod mm;
pub mod oracle;
pub mod prog;
mod reuse_numa;
pub mod sem;
mod shoot;
mod tracewire;

pub use chaos::{ChaosConfig, WatchdogConfig};
pub use config::KernelConfig;
pub use cpu::{Cpu, CpuMode};
pub use event::Event;
pub use machine::{Machine, MachineStats};
pub use mm::{FileId, Mm, Vma, VmaKind};
pub use oracle::Oracle;
pub use prog::{MadviseLoopProg, Prog, ProgAction, ProgCtx, Syscall};
pub use tlbdown_tlb::TlbGeometry;

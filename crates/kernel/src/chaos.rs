//! Chaos layer: fault-injection configuration and the csd-lock watchdog.
//!
//! Two halves live here:
//!
//! 1. **Configuration** ([`ChaosConfig`], [`WatchdogConfig`]): which
//!    [`FaultSpec`] perturbs the machine and how the kernel defends
//!    itself. The injection mechanism itself is `tlbdown_sim::fault`;
//!    the wiring sits at the IPI-send, IRQ-entry and flush sites in
//!    `shoot.rs` / `machine.rs`.
//!
//! 2. **Hardening** (the `impl Machine` below), mirroring Linux's
//!    `csd_lock_wait` watchdog (`CSD_LOCK_WAIT_DEBUG`, 2019-era
//!    `smp.c`): when an initiator spin-waits on acknowledgements past a
//!    timeout, the watchdog fires; it re-sends the IPIs to the laggards a
//!    bounded number of times, and if they stay silent it degrades
//!    gracefully — a conservative full flush of the target mm's PCIDs on
//!    each unresponsive core, followed by a forced acknowledgement, so
//!    the initiator always completes in bounded simulated time with the
//!    flush guarantee intact. The stall is recorded as a
//!    [`SimError::ShootdownStall`] diagnostic (not an oracle violation:
//!    the degraded path is *safe*, just slow).
//!
//! The watchdog is armed for every shootdown whenever it is enabled
//! (which is the default): on a healthy machine every ack arrives long
//! before the timeout and the event is a no-op, so enabling it does not
//! perturb fault-free schedules.

use tlbdown_core::ShootdownId;
use tlbdown_sim::fault::{FaultSpec, IpiFault};
use tlbdown_types::{CoreId, Cycles, SimError};

use crate::event::Event;
use crate::machine::Machine;
use crate::tracewire::trace_emit;
#[cfg(feature = "trace")]
use tlbdown_trace::{AckKind, PerturbKind, TraceEvent};

/// The csd-lock watchdog on the initiator's ack spin-wait.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Whether the watchdog is armed at all.
    pub enabled: bool,
    /// Cycles an initiator may spin before the watchdog intervenes.
    /// Healthy shootdowns on the paper machine complete in well under
    /// 10⁵ cycles even with every optimization off.
    pub timeout_cycles: u64,
    /// Bounded IPI re-sends before degrading to the forced-flush path.
    pub max_resends: u32,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            timeout_cycles: 1_000_000,
            max_resends: 2,
        }
    }
}

/// Chaos-layer configuration carried by `KernelConfig`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosConfig {
    /// What to inject. Inert by default.
    pub fault: FaultSpec,
    /// Seed for the fault plan's own deterministic stream (independent of
    /// the workload and noise seeds, so the same faults replay against
    /// different workloads).
    pub fault_seed: u64,
    /// Watchdog policy.
    pub watchdog: WatchdogConfig,
}

impl ChaosConfig {
    /// A chaos config injecting `fault` with the given seed and the
    /// default watchdog.
    pub fn with_fault(fault: FaultSpec, fault_seed: u64) -> Self {
        ChaosConfig {
            fault,
            fault_seed,
            watchdog: WatchdogConfig::default(),
        }
    }
}

impl Machine {
    /// Send one shootdown IPI to each core of `targets`, routing every
    /// delivery through the fault plan. Returns the initiator-busy cost.
    /// `base` is latency already accumulated before the ICR writes (the
    /// cacheline work of queueing the CSDs).
    pub(crate) fn send_ipis_faulted(
        &mut self,
        initiator: CoreId,
        targets: &[CoreId],
        base: Cycles,
    ) -> Cycles {
        let plan = self.fabric.multicast_plan(initiator, targets);
        let mut delivered = 0u64;
        for d in &plan.deliveries {
            let jitter = self.noise();
            let at = base + d.arrives_in + jitter;
            let ev = |core| Event::IpiArrive {
                core,
                vector: tlbdown_apic::Vector::CallFunction,
            };
            match self.faults.ipi_fault(d.target) {
                IpiFault::Deliver { extra } => {
                    self.engine.schedule_in(at + extra, ev(d.target));
                    delivered += 1;
                }
                IpiFault::Drop => {
                    self.stats.counters.bump("chaos_ipi_dropped");
                    trace_emit!(
                        self,
                        initiator,
                        None::<u64>,
                        TraceEvent::Perturb {
                            kind: PerturbKind::IpiDropped,
                        }
                    );
                }
                IpiFault::Duplicate { gap } => {
                    self.engine.schedule_in(at, ev(d.target));
                    self.engine.schedule_in(at + gap, ev(d.target));
                    self.stats.counters.bump("chaos_ipi_duplicated");
                    trace_emit!(
                        self,
                        initiator,
                        None::<u64>,
                        TraceEvent::Perturb {
                            kind: PerturbKind::IpiDuplicated,
                        }
                    );
                    delivered += 2;
                }
            }
        }
        self.stats.counters.add("ipis_sent", delivered);
        plan.initiator_busy
    }

    /// Arm the watchdog for shootdown `id` if enabled.
    pub(crate) fn arm_watchdog(&mut self, initiator: CoreId, id: ShootdownId) {
        if self.cfg.chaos.watchdog.enabled {
            self.engine.schedule_in(
                Cycles::new(self.cfg.chaos.watchdog.timeout_cycles),
                Event::CsdWatchdog {
                    initiator,
                    id,
                    resends: 0,
                },
            );
        }
    }

    /// The csd-lock watchdog fires for shootdown `id`.
    pub(crate) fn on_csd_watchdog(&mut self, initiator: CoreId, id: ShootdownId, resends: u32) {
        // Completed (and reaped) in time: the healthy no-op path.
        let Some(sd) = self.shootdowns.get(&id) else {
            return;
        };
        if sd.complete() {
            // All acks in; the initiator's wake is already scheduled.
            return;
        }
        let pending: Vec<CoreId> = sd.pending_acks.iter().copied().collect();
        self.stats.counters.bump("csd_watchdog_fired");
        trace_emit!(
            self,
            initiator,
            Some(id.0),
            TraceEvent::Perturb {
                kind: PerturbKind::WatchdogFired,
            }
        );
        if resends < self.cfg.chaos.watchdog.max_resends {
            // Bounded retry: re-queue the work and re-send the IPIs (the
            // re-sends pass through the fault plan again — a lossy fabric
            // can eat these too; the degradation path below is the
            // backstop that keeps completion bounded).
            self.stats.counters.bump("csd_watchdog_resend");
            trace_emit!(
                self,
                initiator,
                Some(id.0),
                TraceEvent::Perturb {
                    kind: PerturbKind::WatchdogResend,
                }
            );
            for t in &pending {
                if !self.cpus[t.index()].csq.contains(&id) {
                    self.cpus[t.index()].csq.push_back(id);
                }
            }
            self.send_ipis_faulted(initiator, &pending, Cycles::ZERO);
            self.engine.schedule_in(
                Cycles::new(self.cfg.chaos.watchdog.timeout_cycles),
                Event::CsdWatchdog {
                    initiator,
                    id,
                    resends: resends + 1,
                },
            );
        } else {
            // Degrade: conservative full flush + forced ack per laggard.
            self.stats.counters.bump("csd_watchdog_degrade");
            trace_emit!(
                self,
                initiator,
                Some(id.0),
                TraceEvent::Perturb {
                    kind: PerturbKind::WatchdogDegrade,
                }
            );
            self.record_error(SimError::ShootdownStall {
                initiator,
                pending: pending.clone(),
            });
            for t in pending {
                self.engine
                    .schedule_in(Cycles::ZERO, Event::ForcedFullFlush { core: t, id });
            }
        }
    }

    /// Degraded recovery on an unresponsive responder: flush the target
    /// mm's PCIDs wholesale (strictly stronger than the selective flush
    /// the lost IPI asked for), sync the generation bookkeeping, and
    /// acknowledge on the core's behalf.
    pub(crate) fn on_forced_flush(&mut self, core: CoreId, id: ShootdownId) {
        let Some(sd) = self.shootdowns.get(&id) else {
            return; // completed while the event was in flight
        };
        if !sd.pending_acks.contains(&core) {
            return; // acked (late IPI landed) while the event was in flight
        }
        let mm_id = sd.info.mm;
        self.stats.counters.bump("forced_full_flush");
        trace_emit!(
            self,
            core,
            Some(id.0),
            TraceEvent::FullFlush {
                user: self.cfg.safe_mode,
            }
        );
        if let Some(mm) = self.mms.get(&mm_id) {
            let pcid = mm.pcid;
            let cur_gen = mm.gen.current();
            self.tlbs[core.index()].flush_pcid(pcid);
            if self.cfg.safe_mode {
                self.tlbs[core.index()].flush_pcid(pcid.user_sibling());
            }
            let ts = &mut self.cpus[core.index()].tlb_state;
            if ts.loaded_mm == mm_id {
                // The TLB holds nothing for this mm any more; anything the
                // current generation covers is trivially flushed.
                ts.local_tlb_gen = ts.local_tlb_gen.max(cur_gen);
                // A pending deferred user flush for this mm is subsumed.
                if self.cfg.safe_mode {
                    ts.deferred_user.take();
                }
            } else {
                // Not loaded: the stale entries lived under the mm's own
                // PCID; record that they are gone so the next switch-in
                // does not flush again.
                self.cpus[core.index()].pcid_gens.insert(mm_id, cur_gen);
            }
        }
        // The lost IPI's queue entry (if any) is now moot; a later drain
        // of a stale id is tolerated by the IRQ handler, but dropping it
        // here keeps the queue honest.
        self.cpus[core.index()].csq.retain(|q| *q != id);
        trace_emit!(
            self,
            core,
            Some(id.0),
            TraceEvent::IpiAck {
                kind: AckKind::Forced,
                by: core,
            }
        );
        self.record_ack(id, core);
    }
}

/// Re-export for ergonomic `use tlbdown_kernel::chaos::FaultSpec` in
/// tests and benches.
pub use tlbdown_sim::fault::FaultSpec as Fault;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_defaults_are_sane() {
        let w = WatchdogConfig::default();
        assert!(w.enabled);
        assert!(w.timeout_cycles >= 100_000);
        assert!(w.max_resends >= 1);
    }

    #[test]
    fn chaos_default_is_inert() {
        let c = ChaosConfig::default();
        assert!(c.fault.is_inert());
        assert!(c.watchdog.enabled);
    }

    #[test]
    fn with_fault_builder() {
        let c = ChaosConfig::with_fault(FaultSpec::ipi_drop(), 42);
        assert!(!c.fault.is_inert());
        assert_eq!(c.fault_seed, 42);
    }
}

//! Chaos layer: fault-injection configuration and the csd-lock watchdog.
//!
//! Two halves live here:
//!
//! 1. **Configuration** ([`ChaosConfig`], [`WatchdogConfig`]): which
//!    [`FaultSpec`] perturbs the machine and how the kernel defends
//!    itself. The injection mechanism itself is `tlbdown_sim::fault`;
//!    the wiring sits at the IPI-send, IRQ-entry and flush sites in
//!    `shoot.rs` / `machine.rs`.
//!
//! 2. **Hardening** (the `impl Machine` below), mirroring Linux's
//!    `csd_lock_wait` watchdog (`CSD_LOCK_WAIT_DEBUG`, 2019-era
//!    `smp.c`): when an initiator spin-waits on acknowledgements past a
//!    timeout, the watchdog fires; it re-sends the IPIs to the laggards a
//!    bounded number of times, and if they stay silent it degrades
//!    gracefully — a conservative full flush of the target mm's PCIDs on
//!    each unresponsive core, followed by a forced acknowledgement, so
//!    the initiator always completes in bounded simulated time with the
//!    flush guarantee intact. The stall is recorded as a
//!    [`SimError::ShootdownStall`] diagnostic (not an oracle violation:
//!    the degraded path is *safe*, just slow).
//!
//! The watchdog is armed for every shootdown whenever it is enabled
//! (which is the default): on a healthy machine every ack arrives long
//! before the timeout and the event is a no-op, so enabling it does not
//! perturb fault-free schedules.

use tlbdown_core::ShootdownId;
use tlbdown_sim::fault::{FaultSpec, IpiFault};
use tlbdown_types::{CoreId, Cycles, SimError};

use crate::event::Event;
use crate::machine::Machine;
use crate::tracewire::trace_emit;
#[cfg(feature = "trace")]
use tlbdown_trace::{AckKind, PerturbKind, TraceEvent};

/// The storm detector: a per-core EWMA of shootdown inter-arrival gaps.
///
/// Under a shootdown storm (a sev-step-style monitor hammering a victim
/// with one shootdown per faulting access) a responder can be *healthy*
/// yet slow simply because it is drowning in IRQs; firing the full
/// escalation ladder at it would be a false positive. When the detector
/// is enabled and a watchdog fires with acks still missing while any
/// pending responder's arrival EWMA is below `hot_gap_cycles`, the
/// check is postponed (bounded by `max_widens`) instead of escalating.
///
/// The EWMA is *tracked* unconditionally (a few integer ops per IPI
/// send) but only *consulted* when `enabled` — and only on the
/// fired-with-pending-acks path, which benign runs never reach. Enabling
/// the detector therefore cannot perturb a fault-free schedule: same
/// events, same times, same counters, byte-identical metrics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StormDetectorConfig {
    /// Whether widening is applied at all.
    pub enabled: bool,
    /// An arrival EWMA below this many cycles marks the core as
    /// storm-loaded.
    pub hot_gap_cycles: u64,
    /// Each widening postpones the check by `timeout_cycles ×` this.
    pub widen_factor: u64,
    /// Bounded number of widenings per watchdog chain, so a genuinely
    /// wedged responder still reaches the degrade rung.
    pub max_widens: u32,
    /// EWMA decay: `ewma += (gap - ewma) >> ewma_shift`.
    pub ewma_shift: u32,
}

impl Default for StormDetectorConfig {
    fn default() -> Self {
        StormDetectorConfig {
            enabled: false,
            hot_gap_cycles: 50_000,
            widen_factor: 4,
            max_widens: 2,
            ewma_shift: 3,
        }
    }
}

/// The csd-lock watchdog on the initiator's ack spin-wait, grown into a
/// Linux-style escalation ladder:
///
/// 1. **retry** — re-send the lost IPIs with exponential backoff and
///    seeded jitter, up to `max_resends` times;
/// 2. **degrade** — give up on the laggards: forced full flush + forced
///    ack per core, recorded as [`SimError::ShootdownStall`];
/// 3. **quarantine** — a core that rode the ladder to the degrade rung
///    `quarantine_after` consecutive times is exiled: shootdowns that
///    find it pending skip the retry rung entirely (straight to the
///    forced flush) and the responder itself applies unconditional
///    full-flush semantics until `probation_acks` healthy
///    acknowledgements buy its way back in.
///
/// The storm detector (`storm`) sits in front of the ladder and widens
/// the effective timeout under load so a merely-swamped responder is not
/// mistaken for a wedged one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Whether the watchdog is armed at all.
    pub enabled: bool,
    /// Cycles an initiator may spin before the watchdog intervenes.
    /// Healthy shootdowns on the paper machine complete in well under
    /// 10⁵ cycles even with every optimization off.
    pub timeout_cycles: u64,
    /// Bounded IPI re-sends before degrading to the forced-flush path.
    pub max_resends: u32,
    /// Maximum seeded jitter added to each backoff re-arm (de-synchronizes
    /// retry herds; drawn from a dedicated stream only when a retry is
    /// actually scheduled, so healthy runs never touch it).
    pub jitter_cycles: u64,
    /// Consecutive degrade-rung stalls before a responder is
    /// quarantined. `0` disables quarantine.
    pub quarantine_after: u32,
    /// Healthy (non-forced) acknowledgements a quarantined responder
    /// must deliver before it rejoins the selective-flush path.
    pub probation_acks: u32,
    /// The storm detector in front of the ladder.
    pub storm: StormDetectorConfig,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            enabled: true,
            timeout_cycles: 1_000_000,
            max_resends: 2,
            jitter_cycles: 2_500,
            quarantine_after: 3,
            probation_acks: 2,
            storm: StormDetectorConfig::default(),
        }
    }
}

/// Chaos-layer configuration carried by `KernelConfig`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaosConfig {
    /// What to inject. Inert by default.
    pub fault: FaultSpec,
    /// Seed for the fault plan's own deterministic stream (independent of
    /// the workload and noise seeds, so the same faults replay against
    /// different workloads).
    pub fault_seed: u64,
    /// Watchdog policy.
    pub watchdog: WatchdogConfig,
}

impl ChaosConfig {
    /// A chaos config injecting `fault` with the given seed and the
    /// default watchdog.
    pub fn with_fault(fault: FaultSpec, fault_seed: u64) -> Self {
        ChaosConfig {
            fault,
            fault_seed,
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// Per-core escalation-ladder state (see [`WatchdogConfig`]): stall
/// streaks, quarantine membership, probation credit, and the storm
/// detector's arrival EWMAs. All of it is protocol-relevant (it steers
/// future flush decisions), so `Machine::state_digest` hashes it.
#[derive(Debug)]
pub(crate) struct Escalation {
    /// Jitter stream for backoff re-arms. Drawn from *only* when a retry
    /// is scheduled, so healthy schedules never advance it.
    pub(crate) jitter_rng: tlbdown_sim::SplitMix64,
    /// Consecutive degrade-rung stalls per core.
    pub(crate) streak: Vec<u32>,
    /// Whether each core is currently quarantined.
    pub(crate) quarantined: Vec<bool>,
    /// Healthy acks still owed before a quarantined core is released.
    pub(crate) probation: Vec<u32>,
    /// Per-core EWMA of shootdown-IPI inter-arrival gaps (cycles);
    /// `u64::MAX` until two arrivals have been seen.
    pub(crate) ewma_gap: Vec<u64>,
    /// Cycle stamp of the last shootdown IPI sent at each core (0 =
    /// never).
    pub(crate) last_arrival: Vec<u64>,
}

impl Escalation {
    /// Fresh state for an `n`-core machine. The jitter stream is forked
    /// off the fault seed so the same faults replay with the same
    /// backoff schedule.
    pub(crate) fn new(n: u32, fault_seed: u64) -> Self {
        Escalation {
            jitter_rng: tlbdown_sim::SplitMix64::new(fault_seed ^ 0x5707_11db_0a7c_41e5),
            streak: vec![0; n as usize],
            quarantined: vec![false; n as usize],
            probation: vec![0; n as usize],
            ewma_gap: vec![u64::MAX; n as usize],
            last_arrival: vec![0; n as usize],
        }
    }
}

impl Machine {
    /// Send one shootdown IPI to each core of `targets`, routing every
    /// delivery through the fault plan. Returns the initiator-busy cost.
    /// `base` is latency already accumulated before the ICR writes (the
    /// cacheline work of queueing the CSDs).
    pub(crate) fn send_ipis_faulted(
        &mut self,
        initiator: CoreId,
        targets: &[CoreId],
        base: Cycles,
    ) -> Cycles {
        let plan = self.fabric.multicast_plan(initiator, targets);
        let mut delivered = 0u64;
        for d in &plan.deliveries {
            let jitter = self.noise();
            let at = base + d.arrives_in + jitter;
            let ev = |core| Event::IpiArrive {
                core,
                vector: tlbdown_apic::Vector::CallFunction,
            };
            match self.faults.ipi_fault(d.target) {
                IpiFault::Deliver { extra } => {
                    self.engine.schedule_in(at + extra, ev(d.target));
                    delivered += 1;
                }
                IpiFault::Drop => {
                    self.stats.counters.bump("chaos_ipi_dropped");
                    trace_emit!(
                        self,
                        initiator,
                        None::<u64>,
                        TraceEvent::Perturb {
                            kind: PerturbKind::IpiDropped,
                        }
                    );
                }
                IpiFault::Duplicate { gap } => {
                    self.engine.schedule_in(at, ev(d.target));
                    self.engine.schedule_in(at + gap, ev(d.target));
                    self.stats.counters.bump("chaos_ipi_duplicated");
                    trace_emit!(
                        self,
                        initiator,
                        None::<u64>,
                        TraceEvent::Perturb {
                            kind: PerturbKind::IpiDuplicated,
                        }
                    );
                    delivered += 2;
                }
            }
        }
        self.stats.counters.add("ipis_sent", delivered);
        plan.initiator_busy
    }

    /// Arm the watchdog for shootdown `id` if enabled.
    pub(crate) fn arm_watchdog(&mut self, initiator: CoreId, id: ShootdownId) {
        if self.cfg.chaos.watchdog.enabled {
            trace_emit!(
                self,
                initiator,
                Some(id.0),
                TraceEvent::Perturb {
                    kind: PerturbKind::WatchdogArmed,
                }
            );
            self.engine.schedule_in(
                Cycles::new(self.cfg.chaos.watchdog.timeout_cycles),
                Event::CsdWatchdog {
                    initiator,
                    id,
                    resends: 0,
                    widened: 0,
                },
            );
        }
    }

    /// Update `core`'s arrival EWMA for a shootdown IPI sent now. Always
    /// tracked (the storm detector only *reads* it when enabled) so that
    /// toggling the detector cannot change machine state evolution.
    pub(crate) fn note_shootdown_arrival(&mut self, core: CoreId) {
        let now = self.engine.now().as_u64();
        let i = core.index();
        let last = self.esc.last_arrival[i];
        self.esc.last_arrival[i] = now;
        if last == 0 {
            return;
        }
        let gap = now.saturating_sub(last);
        let s = self.cfg.chaos.watchdog.storm.ewma_shift;
        let ewma = self.esc.ewma_gap[i];
        self.esc.ewma_gap[i] = if ewma == u64::MAX {
            gap
        } else {
            // ewma += (gap - ewma) >> s, in unsigned-safe form.
            ewma - (ewma >> s) + (gap >> s)
        };
    }

    /// A responder delivered a healthy (early or late, never forced)
    /// acknowledgement: reset its stall streak and, if quarantined, pay
    /// down its probation — releasing it once the balance clears.
    pub(crate) fn note_healthy_ack(&mut self, core: CoreId) {
        let i = core.index();
        self.esc.streak[i] = 0;
        if self.esc.quarantined[i] {
            self.esc.probation[i] = self.esc.probation[i].saturating_sub(1);
            if self.esc.probation[i] == 0 {
                self.esc.quarantined[i] = false;
                self.stats.counters.bump("quarantine_exits");
                trace_emit!(
                    self,
                    core,
                    None::<u64>,
                    TraceEvent::Perturb {
                        kind: PerturbKind::QuarantineExit,
                    }
                );
            }
        }
    }

    /// Whether `core` is currently quarantined by the escalation ladder.
    pub fn is_quarantined(&self, core: CoreId) -> bool {
        self.esc.quarantined[core.index()]
    }

    /// Force `core` into quarantine (test/scenario setup; takes no
    /// simulated time and records no error). Probation is set from the
    /// watchdog config, exactly as an organic entry would.
    pub fn quarantine_core(&mut self, core: CoreId) {
        let i = core.index();
        self.esc.streak[i] = self.cfg.chaos.watchdog.quarantine_after;
        self.esc.quarantined[i] = true;
        self.esc.probation[i] = self.cfg.chaos.watchdog.probation_acks.max(1);
    }

    /// `core` rode the ladder to the degrade rung: bump its stall streak
    /// and quarantine it once the streak reaches the configured K.
    fn note_stall(&mut self, core: CoreId) {
        let w = &self.cfg.chaos.watchdog;
        let (after, acks) = (w.quarantine_after, w.probation_acks);
        let i = core.index();
        self.esc.streak[i] = self.esc.streak[i].saturating_add(1);
        if after > 0 && !self.esc.quarantined[i] && self.esc.streak[i] >= after {
            self.esc.quarantined[i] = true;
            self.esc.probation[i] = acks.max(1);
            self.stats.counters.bump("quarantine_entries");
            let streak = self.esc.streak[i];
            self.record_error(SimError::ResponderQuarantined { core, streak });
            trace_emit!(
                self,
                core,
                None::<u64>,
                TraceEvent::Perturb {
                    kind: PerturbKind::QuarantineEnter,
                }
            );
        }
    }

    /// The csd-lock watchdog fires for shootdown `id`. The rungs, in
    /// order: healthy no-op → storm widening → quarantined fast-degrade →
    /// bounded retry with backoff + jitter → degrade + quarantine
    /// bookkeeping.
    pub(crate) fn on_csd_watchdog(
        &mut self,
        initiator: CoreId,
        id: ShootdownId,
        resends: u32,
        widened: u32,
    ) {
        // Completed (and reaped) in time: the healthy no-op path.
        let Some(sd) = self.shootdowns.get(&id) else {
            return;
        };
        if sd.complete() {
            // All acks in; the initiator's wake is already scheduled.
            return;
        }
        let pending: Vec<CoreId> = sd.pending_acks.iter().copied().collect();
        let w = self.cfg.chaos.watchdog.clone();
        // Storm rung: acks are missing, but if a pending responder is
        // drowning in shootdown arrivals it is presumed swamped rather
        // than wedged — postpone the check instead of escalating. Benign
        // runs never reach this line, so an enabled-but-idle detector is
        // perturbation-free by construction.
        if w.storm.enabled && widened < w.storm.max_widens {
            let hot = pending
                .iter()
                .any(|t| self.esc.ewma_gap[t.index()] < w.storm.hot_gap_cycles);
            if hot {
                let grace = w.timeout_cycles.saturating_mul(w.storm.widen_factor);
                self.stats.counters.bump("storm_widen");
                self.stats.counters.add("storm_detected_cycles", grace);
                trace_emit!(
                    self,
                    initiator,
                    Some(id.0),
                    TraceEvent::Perturb {
                        kind: PerturbKind::StormWiden,
                    }
                );
                self.engine.schedule_in(
                    Cycles::new(grace),
                    Event::CsdWatchdog {
                        initiator,
                        id,
                        resends,
                        widened: widened + 1,
                    },
                );
                return;
            }
        }
        self.stats.counters.bump("csd_watchdog_fired");
        trace_emit!(
            self,
            initiator,
            Some(id.0),
            TraceEvent::Perturb {
                kind: PerturbKind::WatchdogFired,
            }
        );
        // Quarantined laggards skip the retry rung: their record says
        // retries don't help, so the forced flush runs immediately and
        // the initiator's wait stays short.
        let (exiled, healthy): (Vec<CoreId>, Vec<CoreId>) = pending
            .iter()
            .copied()
            .partition(|t| self.esc.quarantined[t.index()]);
        for t in &exiled {
            self.stats.counters.bump("quarantine_fast_degrade");
            self.engine
                .schedule_in(Cycles::ZERO, Event::ForcedFullFlush { core: *t, id });
        }
        if healthy.is_empty() {
            return;
        }
        if resends < w.max_resends {
            // Bounded retry: re-queue the work and re-send the IPIs (the
            // re-sends pass through the fault plan again — a lossy fabric
            // can eat these too; the degradation path below is the
            // backstop that keeps completion bounded). Backoff doubles
            // per rung (capped) and seeded jitter de-synchronizes
            // concurrent retry chains.
            self.stats.counters.bump("csd_watchdog_resend");
            self.stats.counters.bump("watchdog_retries");
            trace_emit!(
                self,
                initiator,
                Some(id.0),
                TraceEvent::Perturb {
                    kind: PerturbKind::WatchdogResend,
                }
            );
            for t in &healthy {
                if !self.cpus[t.index()].csq.contains(&id) {
                    self.cpus[t.index()].csq.push_back(id);
                }
            }
            self.send_ipis_faulted(initiator, &healthy, Cycles::ZERO);
            let backoff = w
                .timeout_cycles
                .saturating_mul(1u64 << (resends + 1).min(6));
            let jitter = if w.jitter_cycles > 0 {
                self.esc.jitter_rng.gen_range(w.jitter_cycles + 1)
            } else {
                0
            };
            self.engine.schedule_in(
                Cycles::new(backoff + jitter),
                Event::CsdWatchdog {
                    initiator,
                    id,
                    resends: resends + 1,
                    widened,
                },
            );
        } else {
            // Degrade: conservative full flush + forced ack per laggard.
            self.stats.counters.bump("csd_watchdog_degrade");
            self.stats.counters.bump("watchdog_escalations");
            trace_emit!(
                self,
                initiator,
                Some(id.0),
                TraceEvent::Perturb {
                    kind: PerturbKind::WatchdogDegrade,
                }
            );
            self.record_error(SimError::ShootdownStall {
                initiator,
                pending: healthy.clone(),
            });
            for t in healthy {
                self.note_stall(t);
                self.engine
                    .schedule_in(Cycles::ZERO, Event::ForcedFullFlush { core: t, id });
            }
        }
    }

    /// Degraded recovery on an unresponsive responder: flush the target
    /// mm's PCIDs wholesale (strictly stronger than the selective flush
    /// the lost IPI asked for), sync the generation bookkeeping, and
    /// acknowledge on the core's behalf.
    pub(crate) fn on_forced_flush(&mut self, core: CoreId, id: ShootdownId) {
        let Some(sd) = self.shootdowns.get(&id) else {
            return; // completed while the event was in flight
        };
        if !sd.pending_acks.contains(&core) {
            return; // acked (late IPI landed) while the event was in flight
        }
        let mm_id = sd.info.mm;
        self.stats.counters.bump("forced_full_flush");
        trace_emit!(
            self,
            core,
            Some(id.0),
            TraceEvent::FullFlush {
                user: self.cfg.safe_mode,
            }
        );
        if let Some(mm) = self.mms.get(&mm_id) {
            let pcid = mm.pcid;
            let cur_gen = mm.gen.current();
            self.tlbs[core.index()].flush_pcid(pcid);
            if self.cfg.safe_mode {
                self.tlbs[core.index()].flush_pcid(pcid.user_sibling());
            }
            let ts = &mut self.cpus[core.index()].tlb_state;
            if ts.loaded_mm == mm_id {
                // The TLB holds nothing for this mm any more; anything the
                // current generation covers is trivially flushed.
                ts.local_tlb_gen = ts.local_tlb_gen.max(cur_gen);
                // A pending deferred user flush for this mm is subsumed.
                if self.cfg.safe_mode {
                    ts.deferred_user.take();
                }
            } else {
                // Not loaded: the stale entries lived under the mm's own
                // PCID; record that they are gone so the next switch-in
                // does not flush again.
                self.cpus[core.index()].pcid_gens.insert(mm_id, cur_gen);
            }
        }
        // The lost IPI's queue entry (if any) is now moot; a later drain
        // of a stale id is tolerated by the IRQ handler, but dropping it
        // here keeps the queue honest.
        self.cpus[core.index()].csq.retain(|q| *q != id);
        trace_emit!(
            self,
            core,
            Some(id.0),
            TraceEvent::IpiAck {
                kind: AckKind::Forced,
                by: core,
            }
        );
        self.record_ack(id, core);
    }
}

/// Re-export for ergonomic `use tlbdown_kernel::chaos::FaultSpec` in
/// tests and benches.
pub use tlbdown_sim::fault::FaultSpec as Fault;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_defaults_are_sane() {
        let w = WatchdogConfig::default();
        assert!(w.enabled);
        assert!(w.timeout_cycles >= 100_000);
        assert!(w.max_resends >= 1);
        assert!(w.jitter_cycles < w.timeout_cycles, "jitter stays a tweak");
        assert!(w.quarantine_after >= 1, "one stall must never quarantine");
        assert!(w.probation_acks >= 1);
    }

    #[test]
    fn storm_detector_defaults_off() {
        let s = StormDetectorConfig::default();
        assert!(!s.enabled, "opt-in: benign configs must not widen");
        assert!(s.max_widens >= 1 && s.widen_factor >= 1);
        assert!(s.ewma_shift >= 1 && s.ewma_shift < 32);
    }

    #[test]
    fn escalation_state_boots_cold() {
        let e = Escalation::new(4, 0x99);
        assert_eq!(e.streak, vec![0; 4]);
        assert_eq!(e.quarantined, vec![false; 4]);
        assert_eq!(e.ewma_gap, vec![u64::MAX; 4]);
        assert_eq!(e.last_arrival, vec![0; 4]);
    }

    #[test]
    fn chaos_default_is_inert() {
        let c = ChaosConfig::default();
        assert!(c.fault.is_inert());
        assert!(c.watchdog.enabled);
    }

    #[test]
    fn with_fault_builder() {
        let c = ChaosConfig::with_fault(FaultSpec::ipi_drop(), 42);
        assert!(!c.fault.is_inert());
        assert_eq!(c.fault_seed, 42);
    }
}

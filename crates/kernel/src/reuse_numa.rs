//! The two follow-on protocol levels: L7 reuse-skip (arXiv 2409.10946)
//! and L8 numaPTE (arXiv 2401.15558).
//!
//! **Reuse-skip** targets allocator churn: user allocators return pages
//! with `madvise(DONTNEED)` and fault the same addresses back in moments
//! later. Instead of paying a shootdown per zap, the kernel parks each
//! zapped page — PTE, frame reference and a kernel-side PTE version — in a
//! bounded per-mm window and elides the flush. The oracle pairs for the
//! elided flush stay **un-retired**: hardware staleness during an open
//! window is legal, so eliding without claiming the guarantee is sound by
//! construction. A demand fault that hits the window with a *matching
//! version* and compatible permissions reinstalls the identical PTE with
//! no flush, then declares the guarantee via [`Oracle::reuse_restored`]
//! (every surviving entry translates the restored-identical mapping, so
//! their fills are re-stamped before the version retires). Any conflicting
//! operation — munmap, mprotect, writeback, window overflow — pays the
//! debt first: a real flush carrying the parked retire pairs.
//!
//! **numaPTE** replicates page tables per socket. PTE updates run a
//! deterministic replica-sync to every remote socket (charged as one
//! cacheline-batch transfer per remote socket, routed through the
//! interconnect hop distances); in exchange, page walks and responder-side
//! shootdown-metadata fetches resolve node-locally. The `buggy_numapte`
//! injection refreshes only the updating core's socket and leaves remote
//! replicas stale, so a remote walk translates through the old PTE at the
//! old version — the schedule explorer catches the resulting stale read
//! once the real update's flush retires.
//!
//! [`Oracle::reuse_restored`]: crate::oracle::Oracle::reuse_restored

use tlbdown_core::FlushTlbInfo;
use tlbdown_mem::Pte;
use tlbdown_types::{CoreId, Cycles, MmId, PageSize, PhysAddr, VirtAddr, VirtRange};

use crate::cpu::SyscallFrame;
use crate::machine::Machine;
use crate::mm::{ReuseEntry, StalePte, Vma};

/// PTEs per cacheline: a replica-sync ships one line per 8 updated
/// entries, like the real page-table write-back traffic would.
const PTES_PER_LINE: u64 = 8;

impl Machine {
    /// Whether the L7 reuse window machinery is live.
    pub(crate) fn reuse_active(&self) -> bool {
        self.cfg.opts.reuse_skip
    }

    /// Whether L8 numaPTE replication is live (needs a second socket for
    /// replicas to exist at all).
    pub(crate) fn numa_pte_active(&self) -> bool {
        self.cfg.opts.numa_pte && self.cfg.topo.num_sockets() > 1
    }

    /// Bump the kernel-side PTE version of every page in `range`. Mirrors
    /// the oracle's `range_modified` sites so the reuse-time version check
    /// is oracle-independent. No-op (and no state) unless reuse-skip is on.
    pub(crate) fn reuse_bump_versions(&mut self, mm_id: MmId, range: VirtRange) {
        if !self.reuse_active() {
            return;
        }
        if let Some(mm) = self.mms.get_mut(&mm_id) {
            let mut va = range.start;
            while va < range.end {
                *mm.pte_versions.entry(va.vpn()).or_insert(0) += 1;
                va = va.add(4096);
            }
        }
    }

    /// Pay the flush debt of one parked page: a real (queued) flush
    /// carrying the parked retire pairs, plus the frame release the park
    /// deferred. Runs on eviction, replacement, and conflicting-operation
    /// invalidation.
    pub(crate) fn reuse_pay_debt(
        &mut self,
        core: CoreId,
        sf: &mut SyscallFrame,
        mm_id: MmId,
        vpn: u64,
        entry: ReuseEntry,
    ) {
        let page = VirtAddr::new(vpn << 12);
        let Some(mm) = self.mms.get_mut(&mm_id) else {
            return;
        };
        let gen = mm.gen.bump();
        let info = FlushTlbInfo::ranged(
            mm_id,
            VirtRange::pages(page, 1, PageSize::Size4K),
            PageSize::Size4K,
            gen,
        );
        self.stats.counters.bump("reuse_debt_flush");
        self.queue_flush(core, sf, info, entry.retire);
        match self.frame_refs.put_page(entry.pte.addr) {
            Ok(true) => sf.pending_frees.push(entry.pte.addr),
            Ok(false) => {}
            Err(e) => self.record_error(e),
        }
    }

    /// Invalidate parked entries overlapping `range` before a conflicting
    /// operation (munmap / mprotect / writeback) changes what the pages
    /// mean: each hit pays its debt flush. No-op when reuse-skip is off.
    pub(crate) fn reuse_invalidate_range(
        &mut self,
        core: CoreId,
        sf: &mut SyscallFrame,
        mm_id: MmId,
        range: VirtRange,
    ) {
        if !self.reuse_active() {
            return;
        }
        let hits = match self.mms.get_mut(&mm_id) {
            Some(mm) => mm.reuse.take_range(range),
            None => return,
        };
        for (vpn, entry) in hits {
            self.reuse_pay_debt(core, sf, mm_id, vpn, entry);
        }
    }

    /// Park the pages a reuse-skip `madvise(DONTNEED)` zap removed,
    /// eliding their shootdown. Already-parked pages covered by the range
    /// are refreshed to the new version (a re-zap of a zapped page is a
    /// no-op whose new oracle pair simply joins the parked debt). Returns
    /// the zap's flush elision count for the caller's cost math.
    pub(crate) fn reuse_park_zap(
        &mut self,
        core: CoreId,
        sf: &mut SyscallFrame,
        mm_id: MmId,
        range: VirtRange,
        removed: Vec<(VirtAddr, Pte, PageSize)>,
    ) {
        let any_change = !removed.is_empty();
        if any_change {
            self.reuse_bump_versions(mm_id, range);
        }
        // Oracle versions for the whole range, as the non-elided path
        // would have recorded them. Pairs for pages that had no PTE carry
        // no flush debt; leaving them un-retired is the conservative
        // (always-legal) direction.
        let pairs: std::collections::HashMap<u64, u64> = if any_change && self.cfg.oracle {
            self.oracle
                .range_modified(mm_id, range)
                .into_iter()
                .collect()
        } else {
            Default::default()
        };
        let buggy = self.cfg.buggy_reuse_skip;
        // Refresh parked pages the zap range covers but the zap itself
        // did not touch (their PTEs were already gone).
        if any_change {
            let mut va = range.start;
            while va < range.end {
                let vpn = va.vpn();
                let touched = removed.iter().any(|(r, _, _)| r.vpn() == vpn);
                if !touched {
                    let new_pair = pairs.get(&vpn).map(|&v| (vpn, v));
                    if let Some(mm) = self.mms.get_mut(&mm_id) {
                        let current = mm.pte_versions.get(&vpn).copied().unwrap_or(0);
                        if let Some(e) = mm.reuse.get_mut(vpn) {
                            e.version = current;
                            if let Some(p) = new_pair {
                                e.retire.push(p);
                            }
                        }
                    }
                }
                va = va.add(4096);
            }
        }
        let n = removed.len() as u64;
        for (va, pte, _) in removed {
            let vpn = va.vpn();
            let version = self
                .mms
                .get(&mm_id)
                .and_then(|m| m.pte_versions.get(&vpn).copied())
                .unwrap_or(0);
            let mut retire: Vec<(u64, u64)> =
                pairs.get(&vpn).map(|&v| vec![(vpn, v)]).unwrap_or_default();
            if buggy && self.cfg.oracle && !retire.is_empty() {
                // THE INJECTED BUG: claim the flush guarantee at park
                // time, skipping the versioned-PTE deferral protocol —
                // no flush ran, no fills were re-stamped, yet the pairs
                // retire. Any pre-park entry surviving on another core is
                // now a stale read waiting for a schedule to expose it.
                self.oracle.retire_exact(mm_id, &retire);
                retire.clear();
                self.stats.counters.bump("reuse_buggy_retire");
            }
            // A stale twin already parked for this vpn becomes debt.
            let old = match self.mms.get_mut(&mm_id) {
                Some(mm) => mm.reuse.take(vpn),
                None => None,
            };
            if let Some(old) = old {
                self.reuse_pay_debt(core, sf, mm_id, vpn, old);
            }
            let cap = self.cfg.reuse_window_cap;
            let evicted = match self.mms.get_mut(&mm_id) {
                Some(mm) => mm.reuse.park(
                    vpn,
                    ReuseEntry {
                        pte,
                        version,
                        retire,
                    },
                    cap,
                ),
                None => None,
            };
            if let Some((evpn, evicted)) = evicted {
                self.stats.counters.bump("reuse_evict");
                self.reuse_pay_debt(core, sf, mm_id, evpn, evicted);
            }
        }
        self.stats.counters.add("reuse_park", n);
    }

    /// Try to satisfy a demand fault from the reuse window. On a hit the
    /// identical PTE is reinstalled with **no flush**: the versioned-PTE
    /// check (`kernel pte_versions[vpn] == parked version`) proves nothing
    /// modified the page since it was parked, so every surviving TLB entry
    /// translates correctly again and the guarantee is declared through
    /// [`crate::oracle::Oracle::reuse_restored`]. `buggy_reuse_skip` skips
    /// the version check. A miss (version moved or permissions differ)
    /// leaves the parked debt in place for a later invalidation to pay and
    /// falls back to the ordinary fault path.
    pub(crate) fn reuse_try_hit(
        &mut self,
        core: CoreId,
        mm_id: MmId,
        vma: &Vma,
        page: VirtAddr,
        write: bool,
        fetch: bool,
    ) -> Option<PhysAddr> {
        if !self.reuse_active() {
            return None;
        }
        let vpn = page.vpn();
        let (pte, version) = {
            let e = self.mms.get(&mm_id)?.reuse.get(vpn)?;
            (e.pte, e.version)
        };
        // §4.1-style hazard, reused: the CPU may speculatively cache the
        // parked PTE inside the fault window, before the version check.
        let pcid = self.user_mode_pcid(core);
        if self.cfg.speculative_fill_on_fault {
            self.tlbs[core.index()].fill_speculative(pcid, page, PageSize::Size4K, pte);
        }
        let current = self
            .mms
            .get(&mm_id)?
            .pte_versions
            .get(&vpn)
            .copied()
            .unwrap_or(0);
        // "Same mapping, same permissions": the access must be satisfiable
        // and the parked writability must match what the VMA grants now.
        let perms_ok = pte.flags.permits(write, fetch, true) && pte.writable() == vma.prot_write;
        let version_ok = current == version || self.cfg.buggy_reuse_skip;
        if !(perms_ok && version_ok) {
            // Not reusable: evict the speculative stale fill locally and
            // take the normal path. The parked entry stays as recorded
            // debt — its version can no longer match, so it sits inert
            // until an invalidation or eviction pays it off.
            if self.cfg.speculative_fill_on_fault {
                self.tlbs[core.index()].invlpg(pcid, page);
            }
            self.stats.counters.bump("reuse_version_miss");
            return None;
        }
        let entry = self.mms.get_mut(&mm_id)?.reuse.take(vpn)?;
        let map_ok = {
            let mm = self.mms.get_mut(&mm_id)?;
            mm.space
                .map(
                    &mut self.mem,
                    page,
                    entry.pte.addr,
                    PageSize::Size4K,
                    entry.pte.flags,
                )
                .is_ok()
        };
        if !map_ok {
            // Re-park so the frame reference and debt stay tracked.
            if self.cfg.speculative_fill_on_fault {
                self.tlbs[core.index()].invlpg(pcid, page);
            }
            let cap = self.cfg.reuse_window_cap;
            if let Some(mm) = self.mms.get_mut(&mm_id) {
                mm.reuse.park(vpn, entry, cap);
            }
            return None;
        }
        if self.cfg.oracle {
            for &(_, v) in &entry.retire {
                self.oracle.reuse_restored(mm_id, page, v);
            }
            if self.cfg.speculative_fill_on_fault {
                // The speculative fill now caches a *valid* identical
                // translation: record it at the current version.
                self.oracle
                    .tlb_filled(core, pcid.is_user_view(), mm_id, page);
            }
        }
        if entry.pte.dirty() {
            self.dirty_index.entry(mm_id).or_default().insert(vpn);
        }
        self.stats.counters.bump("reuse_hit");
        Some(entry.pte.addr)
    }

    /// Propagate a PTE update to every socket's page-table replica (L8).
    ///
    /// The real path charges one cacheline batch per remote socket, routed
    /// through the interconnect hop distance to that socket, and keeps all
    /// replicas current. The `buggy_numapte` injection refreshes only the
    /// updating core's socket, recording the old PTE (at `version - 1`)
    /// as stale state every remote socket will keep serving to walks.
    pub(crate) fn numa_replica_update(
        &mut self,
        core: CoreId,
        mm_id: MmId,
        changed: &[(VirtAddr, Pte)],
        pairs: &[(u64, u64)],
    ) -> Cycles {
        if !self.numa_pte_active() || changed.is_empty() {
            return Cycles::ZERO;
        }
        let sockets = self.cfg.topo.num_sockets();
        let per_socket = self.cfg.topo.cores_per_socket();
        let my_socket = self.cfg.topo.socket_of(core);
        let mut cost = Cycles::ZERO;
        if self.cfg.buggy_numapte {
            // THE INJECTED BUG: only the local replica sees the update.
            let Some(mm) = self.mms.get_mut(&mm_id) else {
                return Cycles::ZERO;
            };
            if let Some(local) = mm.numa_stale.get_mut(&my_socket) {
                for (va, _) in changed {
                    local.remove(&va.vpn());
                }
            }
            for s in 0..sockets {
                if s == my_socket {
                    continue;
                }
                let stale = mm.numa_stale.entry(s).or_default();
                for (va, old_pte) in changed {
                    let vnew = pairs
                        .iter()
                        .find(|(vp, _)| *vp == va.vpn())
                        .map(|&(_, v)| v)
                        .unwrap_or(1);
                    stale.insert(
                        va.vpn(),
                        StalePte {
                            pte: *old_pte,
                            version: vnew.saturating_sub(1),
                        },
                    );
                }
            }
            self.stats
                .counters
                .add("numapte_sync_skipped", (sockets - 1) as u64);
        } else {
            // Deterministic replica-sync: the update's page-table lines
            // travel once to each remote socket.
            let lines = (changed.len() as u64).div_ceil(PTES_PER_LINE);
            for s in 0..sockets {
                if s == my_socket {
                    continue;
                }
                let rep = CoreId(s * per_socket);
                let hops = self.dir.jitter_hops(core, rep);
                cost += self.cfg.costs.mem_access * (lines * (1 + hops));
                self.stats.counters.bump("numapte_replica_sync");
            }
            if let Some(mm) = self.mms.get_mut(&mm_id) {
                for stale in mm.numa_stale.values_mut() {
                    for (va, _) in changed {
                        stale.remove(&va.vpn());
                    }
                }
            }
        }
        cost
    }

    /// A page walk on `core` consults its socket's replica first. Under
    /// the real L8 path replicas are always current — the walk merely
    /// counts as node-local. Under `buggy_numapte` a stale replica entry
    /// satisfies the walk with the *old* PTE: the TLB fills at the old
    /// version and the subsequent access hits through it. Returns whether
    /// a stale fill was installed.
    pub(crate) fn numa_stale_walk(
        &mut self,
        core: CoreId,
        mm_id: MmId,
        va: VirtAddr,
        write: bool,
        fetch: bool,
    ) -> bool {
        if !self.numa_pte_active() {
            return false;
        }
        let socket = self.cfg.topo.socket_of(core);
        let page = va.align_down(PageSize::Size4K);
        let stale = {
            let Some(mm) = self.mms.get(&mm_id) else {
                return false;
            };
            mm.numa_stale
                .get(&socket)
                .and_then(|m| m.get(&page.vpn()))
                .copied()
        };
        let Some(sp) = stale else {
            return false;
        };
        if !sp.pte.flags.permits(write, fetch, true) {
            return false;
        }
        let pcid = self.user_mode_pcid(core);
        self.tlbs[core.index()].fill_speculative(pcid, page, PageSize::Size4K, sp.pte);
        if self.cfg.oracle {
            self.oracle
                .tlb_filled_at(core, pcid.is_user_view(), mm_id, page, sp.version);
        }
        self.stats.counters.bump("numapte_stale_walk");
        true
    }

    /// A demand fault wrote a fresh PTE on `core`'s socket replica: clear
    /// any stale record it held for the page. The real sync path clears
    /// every socket; the buggy path only the faulting one (the others are
    /// exactly the replicas it fails to maintain).
    pub(crate) fn numa_fault_filled(&mut self, core: CoreId, mm_id: MmId, page: VirtAddr) {
        if !self.numa_pte_active() {
            return;
        }
        let my_socket = self.cfg.topo.socket_of(core);
        let buggy = self.cfg.buggy_numapte;
        let Some(mm) = self.mms.get_mut(&mm_id) else {
            return;
        };
        if buggy {
            if let Some(local) = mm.numa_stale.get_mut(&my_socket) {
                local.remove(&page.vpn());
            }
        } else {
            for stale in mm.numa_stale.values_mut() {
                stale.remove(&page.vpn());
            }
        }
        self.stats.counters.bump("numapte_local_walk");
    }
}

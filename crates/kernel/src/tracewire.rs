//! The kernel side of the tracing wire: one emission macro whose
//! expansion depends on the `trace` cargo feature.
//!
//! With the feature on, `trace_emit!` checks the tracer's `enabled`
//! flag and stamps the record with the engine's current time and
//! dispatch count. With the feature off, the macro expands to nothing —
//! the event expression is *not evaluated* (its tokens reference
//! `tlbdown_trace` types that do not exist in that build), so every
//! hook is statically compiled out of the hot path.
//!
//! Emission never mutates simulation state: no RNG draws, no cost
//! charges, no scheduling. That is the invariant behind the no-trace
//! guard — sim metrics are byte-identical with tracing enabled,
//! disabled, or compiled out.

#[cfg(feature = "trace")]
macro_rules! trace_emit {
    ($m:expr, $core:expr, $op:expr, $ev:expr) => {
        if $m.tracer.is_enabled() {
            let at = $m.engine.now();
            let dispatch = $m.engine.events_processed();
            $m.tracer.emit(at, dispatch, $core, $op, $ev);
        }
    };
}

#[cfg(not(feature = "trace"))]
macro_rules! trace_emit {
    ($m:expr, $core:expr, $op:expr, $ev:expr) => {
        // Compiled out. `$ev` is intentionally not expanded (it names
        // trace-crate types); the cheap operands are touched so call
        // sites do not grow unused-variable warnings.
        {
            let _ = (&$m.engine, &$core, &$op);
        }
    };
}

pub(crate) use trace_emit;

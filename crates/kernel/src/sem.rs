//! A reader–writer semaphore model (`mm->mmap_sem`).
//!
//! The semaphore matters twice in the paper: the kernel "typically holds
//! locks during flush, increasing contention" (§2.2), and userspace-safe
//! batching piggybacks its memory barrier on the `mmap_sem` release
//! (§4.2). The model is a fair FIFO rwsem granting to cores.

use std::collections::VecDeque;

use tlbdown_types::CoreId;

/// Lock mode requested by a waiter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SemMode {
    /// Shared (down_read).
    Read,
    /// Exclusive (down_write).
    Write,
}

/// A fair FIFO reader–writer semaphore.
#[derive(Debug, Default)]
pub struct RwSem {
    readers: Vec<CoreId>,
    writer: Option<CoreId>,
    waiters: VecDeque<(CoreId, SemMode)>,
}

impl RwSem {
    /// An unlocked semaphore.
    pub fn new() -> Self {
        RwSem::default()
    }

    /// Whether `core` currently holds the semaphore in any mode.
    pub fn held_by(&self, core: CoreId) -> bool {
        self.writer == Some(core) || self.readers.contains(&core)
    }

    /// Whether anyone holds the semaphore.
    pub fn is_locked(&self) -> bool {
        self.writer.is_some() || !self.readers.is_empty()
    }

    /// Try to acquire; on contention the core is queued and `false` is
    /// returned (the caller blocks until [`RwSem::release`] grants it).
    pub fn acquire(&mut self, core: CoreId, mode: SemMode) -> bool {
        debug_assert!(!self.held_by(core), "mmap_sem does not nest");
        let can = match mode {
            // Fairness: readers don't overtake queued writers.
            SemMode::Read => self.writer.is_none() && self.waiters.is_empty(),
            SemMode::Write => !self.is_locked() && self.waiters.is_empty(),
        };
        if can {
            match mode {
                SemMode::Read => self.readers.push(core),
                SemMode::Write => self.writer = Some(core),
            }
            true
        } else {
            self.waiters.push_back((core, mode));
            false
        }
    }

    /// Release the semaphore held by `core`, returning the cores that are
    /// granted the lock as a result (to be woken).
    ///
    /// # Panics
    ///
    /// Panics if `core` does not hold the semaphore.
    pub fn release(&mut self, core: CoreId) -> Vec<CoreId> {
        if self.writer == Some(core) {
            self.writer = None;
        } else if let Some(pos) = self.readers.iter().position(|&c| c == core) {
            self.readers.remove(pos);
        } else {
            panic!("{core} released a semaphore it does not hold");
        }
        self.grant()
    }

    /// Grant the lock to waiters now that it (partially) freed up.
    fn grant(&mut self) -> Vec<CoreId> {
        let mut woken = Vec::new();
        while let Some(&(core, mode)) = self.waiters.front() {
            match mode {
                SemMode::Write => {
                    if self.is_locked() {
                        break;
                    }
                    self.writer = Some(core);
                    self.waiters.pop_front();
                    woken.push(core);
                    break; // writer is exclusive
                }
                SemMode::Read => {
                    if self.writer.is_some() {
                        break;
                    }
                    self.readers.push(core);
                    self.waiters.pop_front();
                    woken.push(core);
                    // Keep granting consecutive readers.
                }
            }
        }
        woken
    }

    /// Number of queued waiters.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: CoreId = CoreId(0);
    const B: CoreId = CoreId(1);
    const C: CoreId = CoreId(2);

    #[test]
    fn readers_share() {
        let mut s = RwSem::new();
        assert!(s.acquire(A, SemMode::Read));
        assert!(s.acquire(B, SemMode::Read));
        assert!(s.held_by(A) && s.held_by(B));
    }

    #[test]
    fn writer_excludes() {
        let mut s = RwSem::new();
        assert!(s.acquire(A, SemMode::Write));
        assert!(!s.acquire(B, SemMode::Read));
        assert!(!s.acquire(C, SemMode::Write));
        assert_eq!(s.waiting(), 2);
        let woken = s.release(A);
        assert_eq!(woken, vec![B], "FIFO: reader B first");
        let woken = s.release(B);
        assert_eq!(woken, vec![C]);
        assert!(s.held_by(C));
    }

    #[test]
    fn readers_do_not_overtake_queued_writer() {
        let mut s = RwSem::new();
        assert!(s.acquire(A, SemMode::Read));
        assert!(!s.acquire(B, SemMode::Write));
        // C's read request queues behind the writer (fairness).
        assert!(!s.acquire(C, SemMode::Read));
        let woken = s.release(A);
        assert_eq!(woken, vec![B]);
        let woken = s.release(B);
        assert_eq!(woken, vec![C]);
    }

    #[test]
    fn consecutive_readers_wake_together() {
        let mut s = RwSem::new();
        assert!(s.acquire(A, SemMode::Write));
        assert!(!s.acquire(B, SemMode::Read));
        assert!(!s.acquire(C, SemMode::Read));
        let woken = s.release(A);
        assert_eq!(woken, vec![B, C]);
    }

    #[test]
    #[should_panic(expected = "does not hold")]
    fn release_without_hold_panics() {
        let mut s = RwSem::new();
        s.release(A);
    }
}

//! The shootdown executor: initiator runs, responder IRQ handling, and the
//! LATR-style asynchronous mode.

use tlbdown_core::smp::run_script;
use tlbdown_core::{flush_decision, use_early_ack, FlushAction, FlushTlbInfo, Shootdown};
use tlbdown_types::{CoreId, Cycles, PageSize, SimError, VirtRange};

use crate::cpu::{IrqAct, IrqFrame, IrqStage, LocalMode, SdStage, ShootdownRun};
use crate::event::Event;
use crate::machine::Machine;
use crate::tracewire::trace_emit;
#[cfg(feature = "trace")]
use tlbdown_trace::{AckKind, SdPhaseKind, SkipKind, TraceEvent};

/// Result of stepping an initiator shootdown run.
pub(crate) enum SdOut {
    /// Keep going after this cost.
    Continue(Cycles),
    /// Spin-waiting on acknowledgements.
    Block,
    /// The run is complete (including remote acks).
    Done(Cycles),
}

#[cfg(feature = "trace")]
impl Machine {
    /// Open the trace span for `run` on leaving `Prep`: pick its
    /// operation id (the registered shootdown id when there are remote
    /// targets, a synthetic local id otherwise) and mark the `Prep`
    /// phase. The mark carries the time the `Prep` step was dispatched
    /// — the engine clock does not advance inside a step — so the span
    /// starts exactly where the executor did.
    fn trace_sd_begin(&mut self, core: CoreId, run: &mut ShootdownRun) {
        if !self.tracer.is_enabled() {
            return;
        }
        let op = match run.sd {
            Some(id) => id.0,
            None => self.tracer.alloc_local_op(),
        };
        run.trace_op = Some(op);
        run.trace_stage = Some(SdStage::Prep);
        trace_emit!(
            self,
            core,
            Some(op),
            TraceEvent::SdPhase {
                phase: SdPhaseKind::Prep,
            }
        );
    }

    /// Mark a stage transition for `run`'s span, exactly once per stage
    /// (per-entry INVLPG loops re-enter a stage many times). Called at
    /// the top of every `step_sd`.
    fn trace_sd_step(&mut self, core: CoreId, run: &mut ShootdownRun) {
        let Some(op) = run.trace_op else { return };
        if run.trace_stage == Some(run.stage) {
            return;
        }
        let phase = match run.stage {
            SdStage::SendIpis => SdPhaseKind::SendIpis,
            SdStage::LocalFlush => SdPhaseKind::LocalFlush,
            SdStage::UserFlush => SdPhaseKind::UserFlush,
            SdStage::Wait => SdPhaseKind::Wait,
            SdStage::Prep | SdStage::Done => return,
        };
        run.trace_stage = Some(run.stage);
        trace_emit!(self, core, Some(op), TraceEvent::SdPhase { phase });
    }

    /// Close `run`'s span. `sync` is the final acknowledgement-poll cost,
    /// charged after the completion timestamp, so the analysis layer
    /// computes end-to-end latency as `done_at + sync - start`.
    fn trace_sd_done(&mut self, core: CoreId, run: &ShootdownRun, sync: Cycles) {
        if let Some(op) = run.trace_op {
            trace_emit!(self, core, Some(op), TraceEvent::SdDone { sync });
        }
    }
}

#[cfg(not(feature = "trace"))]
impl Machine {
    // No-op twins so `step_sd` reads the same in both builds.
    #[inline(always)]
    fn trace_sd_begin(&mut self, _core: CoreId, _run: &mut ShootdownRun) {}
    #[inline(always)]
    fn trace_sd_step(&mut self, _core: CoreId, _run: &mut ShootdownRun) {}
    #[inline(always)]
    fn trace_sd_done(&mut self, _core: CoreId, _run: &ShootdownRun, _sync: Cycles) {}
}

impl Machine {
    /// The stage following `from`, honouring the §3.1 ordering.
    fn sd_next(&self, from: SdStage) -> SdStage {
        let concurrent = self.cfg.opts.concurrent_flush;
        match (from, concurrent) {
            (SdStage::Prep, false) => SdStage::LocalFlush,
            (SdStage::Prep, true) => SdStage::SendIpis,
            (SdStage::SendIpis, false) => SdStage::Wait,
            (SdStage::SendIpis, true) => SdStage::LocalFlush,
            (SdStage::LocalFlush, _) => SdStage::UserFlush,
            (SdStage::UserFlush, false) => SdStage::SendIpis,
            (SdStage::UserFlush, true) => SdStage::Wait,
            (SdStage::Wait, _) => SdStage::Done,
            (SdStage::Done, _) => SdStage::Done,
        }
    }

    /// Step the initiator-side shootdown state machine.
    pub(crate) fn step_sd(&mut self, core: CoreId, run: &mut ShootdownRun) -> SdOut {
        self.trace_sd_step(core, run);
        match run.stage {
            SdStage::Prep => {
                self.stats.counters.bump("shootdown");
                let mm_id = run.info.mm;
                let mut cost = self.cfg.costs.shootdown_prep;
                // Candidate responders: every CPU the mm is active on.
                let candidates: Vec<CoreId> = self
                    .mms
                    .get(&mm_id)
                    .map(|m| m.cpumask.iter().copied().filter(|c| *c != core).collect())
                    .unwrap_or_default();
                if self.cfg.lazy_latr {
                    // LATR-style: no IPIs, no waiting; flushes are applied
                    // asynchronously after a delay. (The §2.3.2 hazard.)
                    for t in &candidates {
                        self.engine.schedule_in(
                            Cycles::new(self.cfg.lazy_latr_delay_cycles),
                            Event::LazyFlushDue {
                                core: *t,
                                info: run.info,
                            },
                        );
                    }
                    self.stats
                        .counters
                        .add("latr_deferred", candidates.len() as u64);
                    run.stage = SdStage::LocalFlush;
                    self.trace_sd_begin(core, run);
                    return SdOut::Continue(cost);
                }
                let mut targets = Vec::new();
                for t in candidates {
                    // Lazy-mode check: one cacheline read per candidate.
                    let script = self.smp.check_lazy(t);
                    cost += run_script(&mut self.dir, core, &script);
                    if self.cpus[t.index()].in_batched_syscall {
                        // §4.2: the target is inside a batched syscall —
                        // no user access can happen there; it re-syncs at
                        // its own kernel exit.
                        self.stats.counters.bump("batched_skip");
                        trace_emit!(
                            self,
                            core,
                            None::<u64>,
                            TraceEvent::Skip {
                                kind: SkipKind::Batched,
                            }
                        );
                    } else if self.cpus[t.index()].tlb_state.needs_ipi_for(mm_id) {
                        targets.push(t);
                    } else {
                        self.stats.counters.bump("lazy_skip");
                        trace_emit!(
                            self,
                            core,
                            None::<u64>,
                            TraceEvent::Skip {
                                kind: SkipKind::Lazy,
                            }
                        );
                    }
                }
                if !targets.is_empty() {
                    let id = self.alloc_sd_id();
                    let early = use_early_ack(&run.info, &self.cfg.opts);
                    run.initial_targets = targets.len();
                    run.sd = Some(id);
                    self.shootdowns.insert(
                        id,
                        Shootdown::new(id, core, run.info, targets, early, self.engine.now()),
                    );
                    if early {
                        self.stats.counters.bump("early_ack_shootdown");
                    }
                }
                run.stage = self.sd_next(SdStage::Prep);
                self.trace_sd_begin(core, run);
                SdOut::Continue(cost)
            }
            SdStage::SendIpis => {
                let Some(id) = run.sd else {
                    run.stage = self.sd_next(SdStage::SendIpis);
                    return SdOut::Continue(Cycles::ZERO);
                };
                let targets: Vec<CoreId> =
                    self.shootdowns[&id].pending_acks.iter().copied().collect();
                let mut cost = Cycles::ZERO;
                for t in &targets {
                    let script = self.smp.enqueue_work(core, *t);
                    let step = run_script(&mut self.dir, core, &script);
                    cost += step;
                    // Chaos: the CSD cacheline may bounce slowly — once
                    // per interconnect hop on routed topologies.
                    cost += self
                        .faults
                        .cacheline_jitter_hops(self.dir.jitter_hops(core, *t));
                    if !self.dir.interconnect().is_flat() {
                        trace_emit!(
                            self,
                            core,
                            Some(id.0),
                            TraceEvent::RoutedTransfer {
                                from: core,
                                to: *t,
                                hops: self.dir.jitter_hops(core, *t),
                                cost: step,
                            }
                        );
                    }
                    self.cpus[t.index()].csq.push_back(id);
                    // Storm detector: one EWMA update per first-send
                    // arrival (watchdog re-sends don't count — a
                    // retried core is stalled, not stormed).
                    self.note_shootdown_arrival(*t);
                    trace_emit!(self, core, Some(id.0), TraceEvent::CsqEnqueue { to: *t });
                    trace_emit!(self, core, Some(id.0), TraceEvent::IpiSend { to: *t });
                }
                // Every delivery passes through the fault plan (delay,
                // drop, duplicate); the watchdog below is the safety net
                // that keeps dropped IPIs from hanging the spin-wait.
                let busy = self.send_ipis_faulted(core, &targets, cost);
                self.arm_watchdog(core, id);
                run.stage = self.sd_next(SdStage::SendIpis);
                SdOut::Continue(cost + busy)
            }
            SdStage::LocalFlush => {
                let mm_id = run.info.mm;
                let kpcid = self.cpus[core.index()].tlb_state.kernel_pcid;
                let decided = match run.decided.clone() {
                    Some(d) => d,
                    None => {
                        let local = self.cpus[core.index()].tlb_state.local_tlb_gen;
                        let mm_gen = self.mms.get(&mm_id).map(|m| m.gen.current()).unwrap_or(0);
                        let d = flush_decision(local, mm_gen, &run.info);
                        run.decided = Some(d.clone());
                        d
                    }
                };
                match decided {
                    FlushAction::Skip => {
                        self.stats.counters.bump("local_flush_skip");
                        trace_emit!(
                            self,
                            core,
                            run.trace_op,
                            TraceEvent::Skip {
                                kind: SkipKind::LocalGen,
                            }
                        );
                        run.stage = self.sd_next(SdStage::LocalFlush);
                        SdOut::Continue(Cycles::new(50))
                    }
                    FlushAction::Full { upto } => {
                        self.tlbs[core.index()].flush_pcid(kpcid);
                        self.cpus[core.index()].tlb_state.local_tlb_gen = upto;
                        if self.cfg.safe_mode {
                            self.cpus[core.index()]
                                .tlb_state
                                .deferred_user
                                .record_full();
                            run.user_handled = true;
                        }
                        self.stats.counters.bump("local_full_flush");
                        trace_emit!(
                            self,
                            core,
                            run.trace_op,
                            TraceEvent::FullFlush { user: false }
                        );
                        run.stage = self.sd_next(SdStage::LocalFlush);
                        SdOut::Continue(self.cfg.costs.full_flush)
                    }
                    FlushAction::Selective { upto, .. } => {
                        if let LocalMode::CowTrick { va } = run.local_mode {
                            // §4.1: one atomic RMW replaces the INVLPG. The
                            // write cannot use the stale write-protected
                            // entry, so the hardware drops and re-walks it.
                            let costs = self.cfg.costs.clone();
                            let acc = self.mms.get_mut(&mm_id).map(|mm| {
                                self.tlbs[core.index()].access(
                                    kpcid,
                                    va,
                                    true,
                                    false,
                                    &mut mm.space,
                                    &costs,
                                )
                            });
                            let access_cost = match acc {
                                Some(Ok(a)) => {
                                    if self.cfg.oracle && !a.hit {
                                        self.oracle.tlb_filled(
                                            core,
                                            false,
                                            mm_id,
                                            va.align_down(PageSize::Size4K),
                                        );
                                    }
                                    a.cost
                                }
                                Some(Err(_)) => Cycles::ZERO,
                                None => {
                                    self.record_error(SimError::NoSuchMm(mm_id));
                                    Cycles::ZERO
                                }
                            };
                            self.cpus[core.index()].tlb_state.local_tlb_gen = upto;
                            trace_emit!(
                                self,
                                core,
                                run.trace_op,
                                TraceEvent::AtomicRmw { va: va.0 }
                            );
                            run.stage = self.sd_next(SdStage::LocalFlush);
                            return SdOut::Continue(self.cfg.costs.atomic_rmw + access_cost);
                        }
                        if run.kidx < run.kernel_entries.len() {
                            let va = run.kernel_entries[run.kidx];
                            run.kidx += 1;
                            self.tlbs[core.index()].invlpg(kpcid, va);
                            trace_emit!(
                                self,
                                core,
                                run.trace_op,
                                TraceEvent::Invlpg {
                                    va: va.0,
                                    user: false,
                                }
                            );
                            let slow = self.faults.invlpg_penalty(core);
                            SdOut::Continue(self.cfg.costs.invlpg + slow)
                        } else {
                            self.cpus[core.index()].tlb_state.local_tlb_gen = upto;
                            run.stage = self.sd_next(SdStage::LocalFlush);
                            SdOut::Continue(Cycles::ZERO)
                        }
                    }
                }
            }
            SdStage::UserFlush => {
                // User-PCID handling only exists under PTI, and only when a
                // selective flush actually ran locally.
                let selective = matches!(run.decided, Some(FlushAction::Selective { .. }));
                if !self.cfg.safe_mode || run.user_handled || !selective {
                    run.stage = self.sd_next(SdStage::UserFlush);
                    return SdOut::Continue(Cycles::ZERO);
                }
                let upcid = self.cpus[core.index()].tlb_state.user_pcid;
                let in_context = self.cfg.opts.in_context_flush && !run.info.freed_tables;
                if in_context {
                    // §3.4 interplay: while waiting for the FIRST remote
                    // acknowledgement, spare cycles flush user PTEs
                    // eagerly; once an ack arrives, defer the rest.
                    let still_no_ack = run
                        .sd
                        .and_then(|id| self.shootdowns.get(&id))
                        .map(|sd| sd.pending_acks.len() == run.initial_targets)
                        .unwrap_or(false);
                    let interleave = self.cfg.opts.concurrent_flush && still_no_ack;
                    if interleave && run.uidx < run.user_entries.len() {
                        let va = run.user_entries[run.uidx];
                        run.uidx += 1;
                        self.tlbs[core.index()].invpcid_single(upcid, va);
                        self.stats.counters.bump("interleaved_user_flush");
                        trace_emit!(
                            self,
                            core,
                            run.trace_op,
                            TraceEvent::Invlpg {
                                va: va.0,
                                user: true
                            }
                        );
                        let slow = self.faults.invlpg_penalty(core);
                        return SdOut::Continue(self.cfg.costs.invpcid_single + slow);
                    }
                    if run.uidx < run.user_entries.len() {
                        let rest = VirtRange::new(run.user_entries[run.uidx], run.info.range.end);
                        self.cpus[core.index()]
                            .tlb_state
                            .deferred_user
                            .record(rest, run.info.stride);
                        self.stats.counters.bump("user_flush_deferred");
                        trace_emit!(self, core, run.trace_op, TraceEvent::UserFlushDeferred);
                    }
                    run.stage = self.sd_next(SdStage::UserFlush);
                    SdOut::Continue(Cycles::ZERO)
                } else {
                    // Baseline: eager INVPCID per user PTE (§3.4).
                    if run.uidx < run.user_entries.len() {
                        let va = run.user_entries[run.uidx];
                        run.uidx += 1;
                        self.tlbs[core.index()].invpcid_single(upcid, va);
                        trace_emit!(
                            self,
                            core,
                            run.trace_op,
                            TraceEvent::Invlpg {
                                va: va.0,
                                user: true
                            }
                        );
                        let slow = self.faults.invlpg_penalty(core);
                        SdOut::Continue(self.cfg.costs.invpcid_single + slow)
                    } else {
                        run.stage = self.sd_next(SdStage::UserFlush);
                        SdOut::Continue(Cycles::ZERO)
                    }
                }
            }
            SdStage::Wait => {
                let Some(id) = run.sd else {
                    run.stage = SdStage::Done;
                    self.trace_sd_done(core, run, Cycles::ZERO);
                    return SdOut::Done(Cycles::ZERO);
                };
                if self
                    .shootdowns
                    .get(&id)
                    .map(|sd| sd.complete())
                    .unwrap_or(true)
                {
                    // Final acknowledgement poll: one CFD read per target.
                    let Some(sd) = self.shootdowns.remove(&id) else {
                        // The record is gone without this initiator reaping
                        // it — possible only if some recovery path tore it
                        // down; record and complete rather than panic.
                        self.record_error(SimError::InvalidArgument(format!(
                            "shootdown {id:?} vanished before its initiator's wait completed"
                        )));
                        run.stage = SdStage::Done;
                        self.trace_sd_done(core, run, Cycles::ZERO);
                        return SdOut::Done(Cycles::ZERO);
                    };
                    // The spin-wait observes each responder's ack by
                    // pulling its CFD line back: one transfer per target.
                    let mut cost = Cycles::ZERO;
                    for t in &sd.targets {
                        let script = self.smp.poll_ack(core, *t);
                        cost += run_script(&mut self.dir, core, &script);
                        cost += self
                            .faults
                            .cacheline_jitter_hops(self.dir.jitter_hops(core, *t));
                    }
                    run.stage = SdStage::Done;
                    self.trace_sd_done(core, run, cost);
                    SdOut::Done(cost)
                } else {
                    SdOut::Block
                }
            }
            SdStage::Done => SdOut::Done(Cycles::ZERO),
        }
    }

    /// Initiator-side completion: the flush guarantee now holds — for
    /// exactly the page versions this operation modified. Retiring at
    /// current versions would claim guarantees on behalf of other
    /// still-in-flight operations.
    pub(crate) fn finish_sd(&mut self, _core: CoreId, run: &ShootdownRun) {
        if self.cfg.oracle {
            self.oracle.retire_exact(run.info.mm, &run.retire);
        }
        self.stats.counters.bump("shootdown_done");
    }

    /// An acknowledgement from `responder` for shootdown `id`. Idempotent:
    /// a responder that already acknowledged (its CFD flag is already
    /// clear) is ignored — a duplicated IPI or a watchdog re-send racing
    /// the original ack must not corrupt the pending-ack set.
    pub(crate) fn record_ack(&mut self, id: tlbdown_core::ShootdownId, responder: CoreId) {
        let Some(sd) = self.shootdowns.get_mut(&id) else {
            return;
        };
        if !sd.pending_acks.contains(&responder) {
            self.stats.counters.bump("duplicate_ack_ignored");
            return;
        }
        let initiator = sd.initiator;
        if sd.ack(responder) {
            self.wake(initiator);
        }
    }

    // --- Responder IRQ handler ---

    pub(crate) fn step_irq(&mut self, core: CoreId, f: &mut IrqFrame) -> crate::exec::StepOut {
        use crate::exec::StepOut;
        match f.stage {
            IrqStage::DrainQueue => {
                f.queue = self.cpus[core.index()].csq.drain(..).collect();
                f.qidx = 0;
                trace_emit!(
                    self,
                    core,
                    None::<u64>,
                    TraceEvent::CsqDrain {
                        n: f.queue.len() as u64,
                    }
                );
                if f.queue.is_empty() {
                    self.stats.counters.bump("spurious_irq");
                    f.stage = IrqStage::Eoi;
                } else {
                    f.stage = IrqStage::FetchWork;
                }
                StepOut::Continue(Cycles::ZERO)
            }
            IrqStage::FetchWork => {
                let id = f.queue[f.qidx];
                let Some(sd) = self.shootdowns.get(&id) else {
                    // Already torn down (a watchdog re-send raced the acks,
                    // or a forced flush reaped it). Nothing was flushed and
                    // nothing must be acknowledged for this item — in
                    // particular `acked` must stay false, or LateAck would
                    // decrement `acked_unflushed` on behalf of a *different*
                    // item still inside its §3.2 early-ack window.
                    self.stats.counters.bump("stale_csq_entry");
                    trace_emit!(
                        self,
                        core,
                        Some(id.0),
                        TraceEvent::Skip {
                            kind: SkipKind::StaleCsq,
                        }
                    );
                    f.act = IrqAct::Skip;
                    f.acked = false;
                    f.stage = IrqStage::LateAck;
                    return StepOut::Continue(Cycles::ZERO);
                };
                let initiator = sd.initiator;
                let info = sd.info;
                f.cur_info = Some(info);
                f.cur_initiator = initiator;
                f.cur_early = sd.early_ack;
                // L8 numaPTE: the flush metadata is replicated per socket,
                // so a responder on a different socket than the initiator
                // reads its own socket's copy — one local memory access
                // instead of the cross-socket cacheline transfer.
                let node_local = self.numa_pte_active()
                    && self.cfg.topo.socket_of(initiator) != self.cfg.topo.socket_of(core);
                let cost = if node_local {
                    self.stats.counters.bump("numapte_local_fetch");
                    self.cfg.costs.mem_access
                } else {
                    let script = self.smp.fetch_work(initiator, core);
                    run_script(&mut self.dir, core, &script)
                        + self
                            .faults
                            .cacheline_jitter_hops(self.dir.jitter_hops(initiator, core))
                };
                trace_emit!(
                    self,
                    core,
                    Some(id.0),
                    TraceEvent::CachelineTransfer { cost }
                );
                if !self.dir.interconnect().is_flat() {
                    trace_emit!(
                        self,
                        core,
                        Some(id.0),
                        TraceEvent::RoutedTransfer {
                            from: initiator,
                            to: core,
                            hops: self.dir.jitter_hops(initiator, core),
                            cost,
                        }
                    );
                }
                let loaded = self.cpus[core.index()].tlb_state.loaded_mm == info.mm;
                let mm_gen = self.mms.get(&info.mm).map(|m| m.gen.current()).unwrap_or(0);
                let quarantine_full = self.is_quarantined(core) && !self.cfg.buggy_quarantine;
                let action = if quarantine_full {
                    // Quarantine semantics: this core's selective-flush
                    // bookkeeping is no longer trusted, so every work
                    // item degrades to an unconditional full flush of
                    // the target mm — correctness preserved outright,
                    // selectivity sacrificed until probation clears.
                    self.stats.counters.bump("quarantine_full_flush");
                    if loaded {
                        FlushAction::Full { upto: mm_gen }
                    } else {
                        // Not loaded: the suspect entries live under the
                        // mm's own PCID; flush them wholesale and record
                        // the synced generation for the next switch-in.
                        if let Some(pcid) = self.mms.get(&info.mm).map(|m| m.pcid) {
                            self.tlbs[core.index()].flush_pcid(pcid);
                            if self.cfg.safe_mode {
                                self.tlbs[core.index()].flush_pcid(pcid.user_sibling());
                            }
                            self.cpus[core.index()].pcid_gens.insert(info.mm, mm_gen);
                            trace_emit!(
                                self,
                                core,
                                Some(id.0),
                                TraceEvent::FullFlush {
                                    user: self.cfg.safe_mode,
                                }
                            );
                        }
                        FlushAction::Skip
                    }
                } else if !loaded {
                    FlushAction::Skip
                } else {
                    let local = self.cpus[core.index()].tlb_state.local_tlb_gen;
                    flush_decision(local, mm_gen, &info)
                };
                f.acked = false;
                match action {
                    FlushAction::Skip => {
                        f.act = IrqAct::Skip;
                        self.stats.counters.bump("responder_skip");
                    }
                    FlushAction::Full { upto } => {
                        f.act = IrqAct::Full;
                        f.upto = upto;
                        self.stats.counters.bump("responder_full_flush");
                    }
                    FlushAction::Selective {
                        range,
                        stride,
                        upto,
                    } => {
                        f.act = IrqAct::Selective;
                        f.upto = upto;
                        f.entries = range.iter_pages(stride).collect();
                        f.user_entries = f.entries.clone();
                        f.eidx = 0;
                        f.uidx = 0;
                    }
                }
                f.stage = IrqStage::FlushDecide;
                StepOut::Continue(cost)
            }
            IrqStage::FlushDecide => {
                let id = f.queue[f.qidx];
                let early = f.cur_early;
                let mut cost = Cycles::ZERO;
                if early && !f.acked {
                    // §3.2: acknowledge on handler entry — no userspace
                    // mapping can be used from here on.
                    let initiator = f.cur_initiator;
                    let script = self.smp.ack(initiator, core);
                    cost += run_script(&mut self.dir, core, &script);
                    cost += self
                        .faults
                        .cacheline_jitter_hops(self.dir.jitter_hops(initiator, core));
                    f.acked = true;
                    if self.cfg.buggy_quarantine && self.is_quarantined(core) {
                        // THE INJECTED BUG: assume the forced-flush path
                        // does the §3.2 accounting for quarantined cores
                        // and skip the `acked_unflushed` bump — but when
                        // the IPI actually arrives, it is *this* handler
                        // that flushes, and an NMI landing inside the
                        // ack→flush window now probes through stale
                        // entries unchallenged.
                        f.cur_buggy_ack = true;
                        self.stats.counters.bump("buggy_quarantine_ack");
                    } else {
                        self.cpus[core.index()].acked_unflushed += 1;
                    }
                    self.stats.counters.bump("early_ack");
                    trace_emit!(
                        self,
                        core,
                        Some(id.0),
                        TraceEvent::IpiAck {
                            kind: AckKind::Early,
                            by: core,
                        }
                    );
                    self.record_ack(id, core);
                    self.note_healthy_ack(core);
                }
                match f.act {
                    IrqAct::Pending => unreachable!("decision made in FetchWork"),
                    IrqAct::Skip => {
                        trace_emit!(
                            self,
                            core,
                            Some(id.0),
                            TraceEvent::Skip {
                                kind: SkipKind::Responder,
                            }
                        );
                        f.stage = IrqStage::LateAck;
                        StepOut::Continue(cost + Cycles::new(50))
                    }
                    IrqAct::Full => {
                        let kpcid = self.cpus[core.index()].tlb_state.kernel_pcid;
                        self.tlbs[core.index()].flush_pcid(kpcid);
                        self.cpus[core.index()].tlb_state.local_tlb_gen = f.upto;
                        if self.cfg.safe_mode {
                            self.cpus[core.index()]
                                .tlb_state
                                .deferred_user
                                .record_full();
                        }
                        // Updating local_tlb_gen writes this CPU's
                        // tlbstate line — the §3.3 false-sharing source.
                        let script = self.smp.touch_tlbstate(core);
                        cost += run_script(&mut self.dir, core, &script);
                        trace_emit!(
                            self,
                            core,
                            Some(id.0),
                            TraceEvent::FullFlush { user: false }
                        );
                        f.stage = IrqStage::LateAck;
                        StepOut::Continue(cost + self.cfg.costs.full_flush)
                    }
                    IrqAct::Selective => {
                        f.stage = IrqStage::FlushEntry;
                        StepOut::Continue(cost)
                    }
                }
            }
            IrqStage::FlushEntry => {
                let kpcid = self.cpus[core.index()].tlb_state.kernel_pcid;
                if f.eidx < f.entries.len() {
                    let va = f.entries[f.eidx];
                    f.eidx += 1;
                    self.tlbs[core.index()].invlpg(kpcid, va);
                    trace_emit!(
                        self,
                        core,
                        Some(f.queue[f.qidx].0),
                        TraceEvent::Invlpg {
                            va: va.0,
                            user: false,
                        }
                    );
                    let slow = self.faults.invlpg_penalty(core);
                    StepOut::Continue(self.cfg.costs.invlpg + slow)
                } else {
                    self.cpus[core.index()].tlb_state.local_tlb_gen = f.upto;
                    // local_tlb_gen lives in the tlbstate line (§3.3
                    // false sharing with the lazy-mode indication).
                    let script = self.smp.touch_tlbstate(core);
                    let c = run_script(&mut self.dir, core, &script);
                    f.stage = IrqStage::UserFlushEntry;
                    StepOut::Continue(c)
                }
            }
            IrqStage::UserFlushEntry => {
                if !self.cfg.safe_mode {
                    f.stage = IrqStage::LateAck;
                    return StepOut::Continue(Cycles::ZERO);
                }
                let info = f.cur_info;
                let freed = info.map(|i| i.freed_tables).unwrap_or(true);
                if self.cfg.opts.in_context_flush && !freed {
                    // §3.4 on the responder: defer the user-PCID flush to
                    // this core's own return to userspace.
                    if f.uidx < f.user_entries.len() {
                        if let Some(i) = info {
                            let rest = VirtRange::new(f.user_entries[f.uidx], i.range.end);
                            self.cpus[core.index()]
                                .tlb_state
                                .deferred_user
                                .record(rest, i.stride);
                            self.stats.counters.bump("user_flush_deferred");
                            trace_emit!(
                                self,
                                core,
                                Some(f.queue[f.qidx].0),
                                TraceEvent::UserFlushDeferred
                            );
                        }
                    }
                    f.stage = IrqStage::LateAck;
                    StepOut::Continue(Cycles::ZERO)
                } else if f.uidx < f.user_entries.len() {
                    let upcid = self.cpus[core.index()].tlb_state.user_pcid;
                    let va = f.user_entries[f.uidx];
                    f.uidx += 1;
                    self.tlbs[core.index()].invpcid_single(upcid, va);
                    trace_emit!(
                        self,
                        core,
                        Some(f.queue[f.qidx].0),
                        TraceEvent::Invlpg {
                            va: va.0,
                            user: true
                        }
                    );
                    let slow = self.faults.invlpg_penalty(core);
                    StepOut::Continue(self.cfg.costs.invpcid_single + slow)
                } else {
                    f.stage = IrqStage::LateAck;
                    StepOut::Continue(Cycles::ZERO)
                }
            }
            IrqStage::LateAck => {
                let id = f.queue[f.qidx];
                let mut cost = Cycles::ZERO;
                if f.acked {
                    // Early-acked: the flush for this item is now done.
                    // A buggy-quarantine ack never bumped the window
                    // counter, so it must not decrement it either.
                    if !f.cur_buggy_ack {
                        let c = &mut self.cpus[core.index()].acked_unflushed;
                        *c = c.saturating_sub(1);
                    }
                } else if self.shootdowns.contains_key(&id) {
                    let script = self.smp.ack(f.cur_initiator, core);
                    cost += run_script(&mut self.dir, core, &script);
                    let hops = self.dir.jitter_hops(f.cur_initiator, core);
                    cost += self.faults.cacheline_jitter_hops(hops);
                    self.stats.counters.bump("late_ack");
                    trace_emit!(
                        self,
                        core,
                        Some(id.0),
                        TraceEvent::IpiAck {
                            kind: AckKind::Late,
                            by: core,
                        }
                    );
                    self.record_ack(id, core);
                    self.note_healthy_ack(core);
                }
                f.qidx += 1;
                f.acked = false;
                f.cur_buggy_ack = false;
                f.act = IrqAct::Pending;
                f.cur_info = None;
                f.stage = if f.qidx < f.queue.len() {
                    IrqStage::FetchWork
                } else {
                    IrqStage::Eoi
                };
                StepOut::Continue(cost)
            }
            IrqStage::Eoi => {
                if let Some(_v) = self.cpus[core.index()].lapic.end_of_interrupt() {
                    // Another queued shootdown IPI: handle it in-place.
                    f.stage = IrqStage::DrainQueue;
                    return crate::exec::StepOut::Continue(self.cfg.costs.irq_dispatch);
                }
                // Returning to user? Run the deferred in-context flushes.
                // (This frame is popped while stepping, so `last()` is the
                // frame the handler interrupted.)
                let to_user = matches!(
                    self.cpus[core.index()].frames.last(),
                    Some(crate::cpu::FrameSlot {
                        frame: crate::cpu::Frame::Prog(_),
                        ..
                    })
                );
                let flush = if to_user {
                    self.kernel_exit_user_flush(core)
                } else {
                    Cycles::ZERO
                };
                let total = self.engine.now() + flush + self.cfg.costs.irq_exit - f.started;
                self.stats.record_irq(core, total);
                crate::exec::StepOut::Done {
                    cost: flush + self.cfg.costs.irq_exit,
                    retval: None,
                }
            }
        }
    }

    // --- LATR-style asynchronous flush application ---

    pub(crate) fn on_lazy_flush(&mut self, core: CoreId, info: FlushTlbInfo) {
        self.stats.counters.bump("latr_flush");
        let ts = &self.cpus[core.index()].tlb_state;
        if ts.loaded_mm != info.mm {
            return;
        }
        let kpcid = ts.kernel_pcid;
        let upcid = ts.user_pcid;
        let mm_gen = self.mms.get(&info.mm).map(|m| m.gen.current()).unwrap_or(0);
        match flush_decision(ts.local_tlb_gen, mm_gen, &info) {
            FlushAction::Skip => {}
            FlushAction::Full { upto } => {
                self.tlbs[core.index()].flush_pcid(kpcid);
                if self.cfg.safe_mode {
                    self.tlbs[core.index()].flush_pcid(upcid);
                }
                self.cpus[core.index()].tlb_state.local_tlb_gen = upto;
            }
            FlushAction::Selective {
                range,
                stride,
                upto,
            } => {
                for va in range.iter_pages(stride) {
                    self.tlbs[core.index()].invlpg(kpcid, va);
                    if self.cfg.safe_mode {
                        self.tlbs[core.index()].invpcid_single(upcid, va);
                    }
                }
                self.cpus[core.index()].tlb_state.local_tlb_gen = upto;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use tlbdown_core::{FlushTlbInfo, Shootdown, ShootdownId};
    use tlbdown_types::{CoreId, Cycles, MmId, PageSize, VirtAddr, VirtRange};

    use crate::{KernelConfig, Machine};

    /// A duplicated shootdown vector (fabric re-delivery, watchdog
    /// re-send racing the original) makes the responder ack the same id
    /// twice. The machine-level bookkeeping must swallow the second ack
    /// instead of corrupting the pending set or waking a stranger.
    #[test]
    fn duplicate_ack_is_ignored_at_machine_level() {
        let mut m = Machine::new(KernelConfig::test_machine(3));
        let info = FlushTlbInfo::ranged(
            MmId::new(1),
            VirtRange::pages(VirtAddr::new(0x1000), 1, PageSize::Size4K),
            PageSize::Size4K,
            1,
        );
        let id = ShootdownId(7);
        m.shootdowns.insert(
            id,
            Shootdown::new(
                id,
                CoreId(0),
                info,
                [CoreId(1), CoreId(2)],
                false,
                Cycles::ZERO,
            ),
        );
        m.record_ack(id, CoreId(1));
        assert_eq!(m.shootdowns[&id].outstanding(), 1);
        // Second delivery of the same vector: ack already recorded.
        m.record_ack(id, CoreId(1));
        assert_eq!(m.shootdowns[&id].outstanding(), 1);
        assert_eq!(m.stats.counters.get("duplicate_ack_ignored"), 1);
        // An ack for a long-gone shootdown is likewise harmless.
        m.record_ack(ShootdownId(99), CoreId(2));
        assert_eq!(m.shootdowns[&id].outstanding(), 1);
    }
}

//! The machine: state, construction, the event loop and scheduling.
//!
//! Frame stepping lives in `exec.rs` (programs, syscalls, faults) and
//! `shoot.rs` (the shootdown initiator/responder state machines); both are
//! `impl Machine` blocks over the state defined here.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use tlbdown_apic::{DeliveryOutcome, IpiFabric, LocalApic, Vector};
use tlbdown_cache::CacheDirectory;
use tlbdown_core::{CpuTlbState, MmGen, Shootdown, ShootdownId, SmpLayer};
use tlbdown_mem::{FrameState, PhysMem};
use tlbdown_sim::fault::FaultPlan;
use tlbdown_sim::{Counter, Engine, SplitMix64, Summary};
use tlbdown_tlb::Tlb;
use tlbdown_types::{CoreId, Cycles, MmId, Pcid, SimError, SimResult, ThreadId, VirtAddr};

use crate::config::KernelConfig;
use crate::cpu::{Cpu, Frame, FrameSlot, IrqFrame, IrqStage, NmiFrame, ResumeState};
use crate::event::Event;
use crate::mm::{File, FileId, FrameRefs, Mm};
use crate::oracle::Oracle;
use crate::prog::Prog;
use crate::sem::RwSem;
use crate::tracewire::trace_emit;
#[cfg(feature = "trace")]
use tlbdown_trace::TraceEvent;

/// A thread pinned to a core.
pub struct Thread {
    /// Identifier.
    pub id: ThreadId,
    /// Address space the thread runs in.
    pub mm: MmId,
    /// The user program.
    pub prog: Box<dyn Prog>,
    /// The core this thread is pinned to.
    pub core: CoreId,
    /// Whether the program has exited.
    pub done: bool,
}

impl std::fmt::Debug for Thread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Thread")
            .field("id", &self.id)
            .field("mm", &self.mm)
            .field("core", &self.core)
            .field("done", &self.done)
            .finish()
    }
}

/// Aggregated measurements.
#[derive(Debug, Default)]
pub struct MachineStats {
    /// Monotone event counters (IPIs, shootdowns, faults, ...).
    pub counters: Counter,
    /// Per-(core, syscall) latency summaries, in cycles.
    pub syscall_lat: HashMap<(CoreId, &'static str), Summary>,
    /// Per-core shootdown-IRQ interruption summaries, in cycles
    /// (the §5.1 responder metric).
    pub irq_lat: HashMap<CoreId, Summary>,
    /// Per-(core, fault kind) latency summaries, in cycles
    /// (the §5.1 / Figure 9 CoW metric uses kind = "cow").
    pub fault_lat: HashMap<(CoreId, &'static str), Summary>,
    /// Per-fault-kind latency histograms (log₂ buckets) — the
    /// distribution behind the storm workload's signal-observability
    /// table, where a Summary's mean hides the attacker-visible tail.
    pub fault_hist: HashMap<&'static str, tlbdown_sim::Histogram>,
}

impl MachineStats {
    /// Record a syscall completion.
    pub fn record_syscall(&mut self, core: CoreId, name: &'static str, lat: Cycles) {
        self.syscall_lat
            .entry((core, name))
            .or_default()
            .record_cycles(lat);
        self.counters.bump(name);
    }

    /// Record a shootdown-IRQ interruption on a responder.
    pub fn record_irq(&mut self, core: CoreId, lat: Cycles) {
        self.irq_lat.entry(core).or_default().record_cycles(lat);
        self.counters.bump("shootdown_irq");
    }

    /// Record a page-fault completion.
    pub fn record_fault(&mut self, core: CoreId, kind: &'static str, lat: Cycles) {
        self.fault_lat
            .entry((core, kind))
            .or_default()
            .record_cycles(lat);
        self.fault_hist
            .entry(kind)
            .or_default()
            .record(lat.as_u64());
        self.counters.bump(kind);
    }
}

/// The simulated machine and kernel.
pub struct Machine {
    /// Boot configuration.
    pub cfg: KernelConfig,
    /// Discrete-event engine.
    pub engine: Engine<Event>,
    /// Physical memory.
    pub mem: PhysMem,
    /// Per-core TLBs.
    pub tlbs: Vec<Tlb>,
    /// Coherence directory for kernel cachelines.
    pub dir: CacheDirectory,
    /// SMP-layer cacheline layout.
    pub smp: SmpLayer,
    /// IPI fabric.
    pub fabric: IpiFabric,
    /// Per-core execution state.
    pub cpus: Vec<Cpu>,
    /// Address spaces.
    pub mms: HashMap<MmId, Mm>,
    /// Simulated files (page cache).
    pub files: HashMap<FileId, File>,
    /// Data-frame reference counts.
    pub frame_refs: FrameRefs,
    /// All threads ever spawned.
    pub threads: Vec<Thread>,
    /// In-flight shootdowns.
    pub shootdowns: HashMap<ShootdownId, Shootdown>,
    /// The safety oracle.
    pub oracle: Oracle,
    /// Measurements.
    pub stats: MachineStats,
    /// Seeded fault-injection plan (inert unless `cfg.chaos` says
    /// otherwise); consulted at IPI sends, IRQ entries and flush sites.
    pub faults: FaultPlan,
    /// Non-fatal kernel errors recorded instead of panicking: vanished
    /// address spaces on hot paths, watchdog-degraded shootdown stalls.
    pub(crate) errors: Vec<SimError>,
    /// Probe addresses for in-flight injected NMIs.
    pub(crate) pending_nmi_probe: HashMap<CoreId, Option<VirtAddr>>,
    /// Per-mm index of dirty user pages (vpn), maintained on write access;
    /// stands in for the page-cache dirty tags that let real writeback
    /// visit only dirty pages.
    pub(crate) dirty_index: HashMap<MmId, std::collections::BTreeSet<u64>>,
    /// Seeded jitter stream (see `KernelConfig::noise_cycles`).
    pub(crate) noise_rng: SplitMix64,
    /// Watchdog escalation-ladder state: per-core stall streaks,
    /// quarantine membership, and the storm detector's arrival EWMAs
    /// (see `chaos.rs`).
    pub(crate) esc: crate::chaos::Escalation,
    /// Structured event tracer (see [`Machine::start_tracing`]).
    /// Disabled by default; emission behind one branch, and compiled
    /// out entirely without the `trace` feature.
    #[cfg(feature = "trace")]
    pub tracer: tlbdown_trace::Tracer,
    next_sd: u64,
    next_mm: u64,
    next_pcid: u16,
    next_file: u64,
    next_thread: u64,
}

impl Machine {
    /// Boot a machine with the given configuration.
    ///
    /// Per-core state is pre-sized for the steady-state footprint the
    /// protocols actually reach (a few stacked frames, a handful of
    /// queued call-single entries, one PCID generation per co-resident
    /// mm), so a scaled dual-socket configuration boots without paying
    /// growth reallocations on the first shootdown storm.
    pub fn new(cfg: KernelConfig) -> Self {
        let n = cfg.topo.num_cores();
        // Mix the boot epoch into every derived seed so a cold-rebooted
        // machine replays a *different* (but still deterministic) noise
        // and fault schedule than its pre-crash boot. Epoch 0 is the
        // identity, keeping all single-boot digests unchanged.
        let cfg_seed = cfg.epoch_seed(cfg.seed);
        let fault_seed = cfg.epoch_seed(cfg.chaos.fault_seed);
        let heap_only = cfg.engine_heap_only;
        let partitioned = cfg.engine_partitioned;
        let cores_per_socket = cfg.topo.cores_per_socket();
        let sockets = cfg.topo.num_sockets();
        let faults = FaultPlan::new(cfg.chaos.fault.clone(), fault_seed, n);
        let esc = crate::chaos::Escalation::new(n, fault_seed);
        // The directory and fabric carry separate interconnect instances:
        // data transfers and IPIs travel distinct NoC virtual channels, so
        // their link queues do not contend with each other.
        let mut dir = CacheDirectory::with_interconnect(
            cfg.topo.clone(),
            cfg.costs.clone(),
            cfg.interconnect.clone(),
        );
        let smp = SmpLayer::new(&mut dir, n, cfg.opts.cacheline_consolidation);
        let fabric = IpiFabric::with_interconnect(
            cfg.topo.clone(),
            cfg.costs.clone(),
            cfg.interconnect.clone(),
        );
        let tlbs = (0..n)
            .map(|_| {
                let mut t = Tlb::with_geometry(cfg.tlb_geometry.clone());
                t.set_split_blind_invlpg(cfg.buggy_fracture);
                t
            })
            .collect();
        let cpus = (0..n)
            .map(|i| {
                let mut frames = Vec::with_capacity(4);
                frames.push(FrameSlot {
                    frame: Frame::Idle,
                    resume: ResumeState::Blocked,
                });
                Cpu {
                    id: CoreId(i),
                    tlb_state: CpuTlbState::load_mm(MmId::KERNEL, Pcid::new(0), 0),
                    lapic: LocalApic::new(),
                    frames,
                    runqueue: VecDeque::with_capacity(4),
                    current: None,
                    csq: VecDeque::with_capacity(8),
                    resume_token: 0,
                    acked_unflushed: 0,
                    in_batched_syscall: false,
                    pcid_gens: HashMap::with_capacity(8),
                }
            })
            .collect();
        Machine {
            cfg,
            engine: if heap_only {
                Engine::new_heap_only()
            } else if partitioned {
                // One sub-heap per socket, routed by the core each event
                // executes on. Dispatch order stays the exact global
                // `(at, seq)` total order (the determinism gate pins it
                // against both other front-ends); the partition split is
                // the structural hook for conservative-window stepping.
                Engine::new_partitioned(sockets as usize, move |ev: &Event| {
                    (ev.core().0 / cores_per_socket) as usize
                })
            } else {
                Engine::new()
            },
            mem: PhysMem::paper_machine(),
            tlbs,
            dir,
            smp,
            fabric,
            cpus,
            mms: HashMap::with_capacity(8),
            files: HashMap::with_capacity(8),
            frame_refs: FrameRefs::new(),
            threads: Vec::with_capacity(n as usize + 4),
            shootdowns: HashMap::with_capacity(n as usize * 2),
            oracle: Oracle::new(),
            stats: MachineStats::default(),
            faults,
            errors: Vec::new(),
            pending_nmi_probe: HashMap::new(),
            dirty_index: HashMap::with_capacity(8),
            noise_rng: SplitMix64::new(cfg_seed),
            esc,
            #[cfg(feature = "trace")]
            tracer: tlbdown_trace::Tracer::disabled(),
            next_sd: 1,
            next_mm: 1,
            next_pcid: 1,
            next_file: 1,
            next_thread: 1,
        }
    }

    /// Cold-reboot the machine: consume the crashed instance and boot a
    /// fresh kernel from the same configuration with a bumped
    /// [`KernelConfig::boot_epoch`].
    ///
    /// Everything volatile is lost — TLBs come back empty (every first
    /// touch refaults), PCIDs and address spaces are gone, in-flight
    /// shootdowns simply vanish (as a power cycle makes them), and the
    /// event clock restarts at zero. Determinism is preserved because
    /// the rebooted machine is a pure function of `(cfg, boot_epoch+1)`;
    /// nothing from the crashed boot leaks across except the config.
    pub fn cold_reboot(self) -> Machine {
        let epoch = self.cfg.boot_epoch + 1;
        Machine::new(self.cfg.with_boot_epoch(epoch))
    }

    /// Which boot of this chassis is running (see
    /// [`KernelConfig::boot_epoch`]).
    pub fn boot_epoch(&self) -> u64 {
        self.cfg.boot_epoch
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.engine.now()
    }

    /// Total events dispatched by the engine since boot.
    pub fn events_processed(&self) -> u64 {
        self.engine.events_processed()
    }

    /// Violations the oracle has recorded.
    pub fn violations(&self) -> &[SimError] {
        self.oracle.violations()
    }

    /// Non-fatal errors the kernel recorded instead of panicking
    /// (missing address spaces, watchdog-degraded stalls). Distinct from
    /// [`Machine::violations`]: these are *handled* conditions, not
    /// safety-contract breaks.
    pub fn recorded_errors(&self) -> &[SimError] {
        &self.errors
    }

    /// Record a non-fatal kernel error.
    pub(crate) fn record_error(&mut self, e: SimError) {
        self.stats.counters.bump("kernel_error");
        self.errors.push(e);
    }

    // --- Setup API ---

    /// Create an address space (process) and return its id.
    ///
    /// Fails with [`SimError::OutOfMemory`] when no frame is left for
    /// the root page table and with [`SimError::InvalidArgument`] when
    /// the PCID space is exhausted — typed errors the caller can
    /// surface, not release-mode panics.
    pub fn create_process(&mut self) -> SimResult<MmId> {
        match self.next_pcid.checked_add(2) {
            Some(next) if next < Pcid::USER_BIT => {}
            _ => return Err(SimError::InvalidArgument("PCID space exhausted".into())),
        }
        let id = MmId::new(self.next_mm);
        self.next_mm += 1;
        let pcid = Pcid::new(self.next_pcid);
        self.next_pcid += 2; // leave room for the PTI user sibling bit
        let space = tlbdown_mem::AddrSpace::new(&mut self.mem)?;
        self.mms.insert(
            id,
            Mm {
                id,
                space,
                gen: MmGen::new(),
                cpumask: BTreeSet::new(),
                vmas: BTreeMap::new(),
                mmap_sem: RwSem::new(),
                pcid,
                mmap_cursor: VirtAddr::new(0x1000_0000),
                reuse: crate::mm::ReuseWindow::new(),
                pte_versions: BTreeMap::new(),
                numa_stale: BTreeMap::new(),
            },
        );
        Ok(id)
    }

    /// Create a file of `pages` page-cache pages.
    ///
    /// Fails with [`SimError::OutOfMemory`] when the page cache cannot
    /// be populated; pages already allocated for the failed file are
    /// released back to the frame allocator.
    pub fn create_file(&mut self, pages: u64) -> SimResult<FileId> {
        let id = FileId(self.next_file);
        let mut frames = Vec::with_capacity(pages as usize);
        for _ in 0..pages {
            let Ok(pa) = self.mem.alloc(FrameState::UserPage) else {
                for prev in frames {
                    if matches!(self.frame_refs.put_page(prev), Ok(true)) {
                        self.mem.free(prev);
                    }
                }
                return Err(SimError::OutOfMemory);
            };
            self.frame_refs.get_page(pa);
            frames.push(pa);
        }
        self.next_file += 1;
        self.files.insert(
            id,
            File {
                pages: frames,
                dirty: BTreeSet::new(),
            },
        );
        Ok(id)
    }

    /// Insert an anonymous VMA directly (benchmark setup; takes no
    /// simulated time). Returns the mapped address, or
    /// [`SimError::NoSuchMm`] for an unknown address space.
    pub fn setup_map_anon(&mut self, mm: MmId, pages: u64) -> SimResult<VirtAddr> {
        let m = self.mms.get_mut(&mm).ok_or(SimError::NoSuchMm(mm))?;
        let addr = m.mmap_cursor;
        m.mmap_cursor = m.mmap_cursor.add((pages + 1) * 4096);
        m.insert_vma(crate::mm::Vma {
            range: tlbdown_types::VirtRange::pages(addr, pages, tlbdown_types::PageSize::Size4K),
            kind: crate::mm::VmaKind::Anon,
            prot_write: true,
            prot_exec: false,
            thp: false,
        })?;
        Ok(addr)
    }

    /// Insert an anonymous THP-eligible VMA at a 2MB-aligned address
    /// (`mmap` + `madvise(MADV_HUGEPAGE)` benchmark setup; takes no
    /// simulated time). Demand faults in fully-unmapped 2MB windows of
    /// this VMA map 2MB leaves. Returns the mapped address.
    pub fn setup_map_anon_thp(&mut self, mm: MmId, pages: u64) -> SimResult<VirtAddr> {
        const HUGE: u64 = 2 * 1024 * 1024;
        let m = self.mms.get_mut(&mm).ok_or(SimError::NoSuchMm(mm))?;
        let addr = tlbdown_types::VirtAddr::new((m.mmap_cursor.as_u64() + HUGE - 1) & !(HUGE - 1));
        m.mmap_cursor = addr.add(pages * 4096 + HUGE); // huge-aligned guard gap
        m.insert_vma(crate::mm::Vma {
            range: tlbdown_types::VirtRange::pages(addr, pages, tlbdown_types::PageSize::Size4K),
            kind: crate::mm::VmaKind::Anon,
            prot_write: true,
            prot_exec: false,
            thp: true,
        })?;
        Ok(addr)
    }

    /// Map a whole file directly (benchmark setup; takes no simulated
    /// time). Returns the mapped address, or [`SimError::NoSuchMm`] /
    /// [`SimError::InvalidArgument`] for an unknown mm or file.
    pub fn setup_map_file(&mut self, mm: MmId, file: FileId, shared: bool) -> SimResult<VirtAddr> {
        let pages = self
            .files
            .get(&file)
            .ok_or_else(|| SimError::InvalidArgument(format!("no such file {file:?}")))?
            .pages
            .len() as u64;
        let m = self.mms.get_mut(&mm).ok_or(SimError::NoSuchMm(mm))?;
        let addr = m.mmap_cursor;
        m.mmap_cursor = m.mmap_cursor.add((pages + 1) * 4096);
        let kind = if shared {
            crate::mm::VmaKind::FileShared {
                file,
                page_offset: 0,
            }
        } else {
            crate::mm::VmaKind::FilePrivate {
                file,
                page_offset: 0,
            }
        };
        m.insert_vma(crate::mm::Vma {
            range: tlbdown_types::VirtRange::pages(addr, pages, tlbdown_types::PageSize::Size4K),
            kind,
            prot_write: true,
            prot_exec: false,
            thp: false,
        })?;
        Ok(addr)
    }

    /// Clear all measurement state (statistics, TLB/coherence/fabric
    /// counters) without touching machine state — used to exclude warm-up
    /// phases from benchmark numbers.
    pub fn reset_measurements(&mut self) {
        self.stats = MachineStats::default();
        for t in &mut self.tlbs {
            t.reset_stats();
        }
        self.dir.reset_stats();
        self.fabric.reset_stats();
    }

    /// Spawn a thread of `mm` pinned to `core`; it starts running when the
    /// core picks it up (immediately if the core is idle).
    pub fn spawn(&mut self, mm: MmId, core: CoreId, prog: Box<dyn Prog>) -> ThreadId {
        assert!(self.mms.contains_key(&mm), "spawn into unknown mm");
        let id = ThreadId(self.next_thread);
        self.next_thread += 1;
        let idx = self.threads.len();
        self.threads.push(Thread {
            id,
            mm,
            prog,
            core,
            done: false,
        });
        self.cpus[core.index()].runqueue.push_back(idx);
        // An idle core picks the thread up via a zero-cost resume.
        if matches!(
            self.cpus[core.index()].frames.last(),
            Some(FrameSlot {
                frame: Frame::Idle,
                ..
            })
        ) && self.cpus[core.index()].frames.len() == 1
        {
            self.schedule_step(core, Cycles::ZERO);
        }
        id
    }

    // --- Event loop ---

    /// Pop and handle exactly one event via the plain FIFO dispatch
    /// path (no scheduler indirection — the fast loop the scale tier
    /// drives). Returns `false` when the queue is drained.
    pub fn step(&mut self) -> bool {
        match self.engine.pop() {
            Some(ev) => {
                self.handle(ev);
                true
            }
            None => false,
        }
    }

    /// Run until the event queue drains.
    pub fn run(&mut self) {
        while let Some(ev) = self.engine.pop() {
            self.handle(ev);
        }
    }

    /// Run until simulated time reaches `deadline` (or the queue drains).
    pub fn run_until(&mut self, deadline: Cycles) {
        loop {
            match self.engine.peek_time() {
                Some(t) if t <= deadline => {}
                _ => break,
            }
            let Some(ev) = self.engine.pop() else { break };
            self.handle(ev);
        }
    }

    /// Process one event chosen by `sched` (see `tlbdown_sim::sched`):
    /// same-cycle ties and race-eligible interrupt arrivals within the
    /// scheduler's window become explicit branch points. Returns `false`
    /// when the queue is drained. With
    /// [`FifoScheduler`](tlbdown_sim::FifoScheduler) this replays exactly
    /// what [`Machine::run`] does.
    pub fn step_with<S: tlbdown_sim::Scheduler<Event>>(&mut self, sched: &mut S) -> bool {
        match self.engine.pop_with(sched, Event::race_eligible) {
            Some(ev) => {
                self.handle(ev);
                true
            }
            None => false,
        }
    }

    /// Run under `sched` until the queue drains or `max_steps` events have
    /// been processed; returns the number of events processed.
    pub fn run_with<S: tlbdown_sim::Scheduler<Event>>(
        &mut self,
        sched: &mut S,
        max_steps: u64,
    ) -> u64 {
        let mut steps = 0;
        while steps < max_steps && self.step_with(sched) {
            steps += 1;
        }
        steps
    }

    fn handle(&mut self, ev: Event) {
        // The engine clamps and logs any event dispatched with a stale
        // fire time (always on, release builds included); surface those
        // as recorded kernel errors so gates and digests see them. The
        // common case is one branch on an empty log.
        if self.engine.has_time_errors() {
            for e in self.engine.take_time_errors() {
                self.record_error(e);
            }
        }
        match ev {
            Event::Resume { core, token } => {
                if token == self.cpus[core.index()].resume_token {
                    self.step_core(core);
                }
            }
            Event::IpiArrive { core, vector } => {
                trace_emit!(self, core, None::<u64>, TraceEvent::IpiDeliver);
                self.on_ipi(core, vector);
            }
            Event::NmiArrive { core } => {
                trace_emit!(
                    self,
                    core,
                    None::<u64>,
                    TraceEvent::EngineDispatch { kind: "nmi_arrive" }
                );
                self.on_nmi(core);
            }
            Event::LazyFlushDue { core, info } => {
                trace_emit!(
                    self,
                    core,
                    None::<u64>,
                    TraceEvent::EngineDispatch {
                        kind: "lazy_flush_due"
                    }
                );
                self.on_lazy_flush(core, info);
            }
            Event::CsdWatchdog {
                initiator,
                id,
                resends,
                widened,
            } => self.on_csd_watchdog(initiator, id, resends, widened),
            Event::ForcedFullFlush { core, id } => self.on_forced_flush(core, id),
        }
    }

    // --- Scheduling helpers ---

    /// Schedule the top frame of `core` to step after `cost` cycles.
    pub(crate) fn schedule_step(&mut self, core: CoreId, cost: Cycles) {
        let cpu = &mut self.cpus[core.index()];
        cpu.resume_token += 1;
        let token = cpu.resume_token;
        if let Some(top) = cpu.frames.last_mut() {
            top.resume = ResumeState::Scheduled {
                end: self.engine.now() + cost,
            };
        }
        self.engine.schedule_in(cost, Event::Resume { core, token });
    }

    /// Wake a core whose top frame is blocked on a now-satisfied condition.
    /// No-op if the blocked frame is covered by an interrupt frame: the
    /// uncovering pop re-steps it.
    pub(crate) fn wake(&mut self, core: CoreId) {
        if matches!(
            self.cpus[core.index()].frames.last(),
            Some(FrameSlot {
                resume: ResumeState::Blocked,
                ..
            })
        ) {
            self.schedule_step(core, Cycles::ZERO);
        }
    }

    /// Push a frame on top of `core`'s stack, suspending the current top,
    /// and schedule its first step after `initial_cost`.
    pub(crate) fn push_frame(&mut self, core: CoreId, frame: Frame, initial_cost: Cycles) {
        let now = self.engine.now();
        let cpu = &mut self.cpus[core.index()];
        if let Some(top) = cpu.frames.last_mut() {
            if let ResumeState::Scheduled { end } = top.resume {
                top.resume = ResumeState::Suspended {
                    remaining: end.saturating_sub(now),
                };
            }
        }
        cpu.frames.push(FrameSlot {
            frame,
            resume: ResumeState::Blocked,
        });
        self.schedule_step(core, initial_cost);
    }

    // --- Interrupt arrival ---

    fn on_ipi(&mut self, core: CoreId, vector: Vector) {
        // NMIs travel via `Event::NmiArrive`, never the maskable IPI
        // path; delivering one here would bypass LAPIC masking. Checked
        // in release builds too — record and drop rather than corrupt
        // the interrupt model.
        if vector.is_nmi() {
            self.record_error(SimError::InvalidArgument(
                "NMI vector delivered on the maskable IPI path".into(),
            ));
            return;
        }
        match self.cpus[core.index()].lapic.accept(vector) {
            DeliveryOutcome::Dispatch => self.dispatch_irq(core),
            DeliveryOutcome::Queued => {}
        }
    }

    /// Push the shootdown IRQ handler frame.
    pub(crate) fn dispatch_irq(&mut self, core: CoreId) {
        let user = matches!(
            self.cpus[core.index()].frames.last(),
            Some(FrameSlot {
                frame: Frame::Prog(_),
                ..
            })
        );
        let mut cost = self.cfg.costs.irq_dispatch + self.noise();
        if user && self.cfg.safe_mode {
            cost += self.cfg.costs.irq_user_entry_extra;
        }
        // Chaos: a dawdling responder enters its handler late (interrupts
        // re-enabled only after a long critical section).
        let entry_delay = self.faults.irq_entry_delay(core);
        if entry_delay > Cycles::ZERO {
            trace_emit!(
                self,
                core,
                None::<u64>,
                TraceEvent::Perturb {
                    kind: tlbdown_trace::PerturbKind::IrqEntryDelay,
                }
            );
        }
        cost += entry_delay;
        self.stats.counters.bump("irq_dispatch");
        let frame = Frame::Irq(IrqFrame {
            started: self.engine.now(),
            stage: IrqStage::DrainQueue,
            queue: Vec::new(),
            qidx: 0,
            acked: false,
            entries: Vec::new(),
            eidx: 0,
            user_entries: Vec::new(),
            uidx: 0,
            upto: 0,
            act: crate::cpu::IrqAct::Pending,
            cur_info: None,
            cur_initiator: CoreId(0),
            cur_early: false,
            cur_buggy_ack: false,
        });
        self.push_frame(core, frame, cost);
    }

    fn on_nmi(&mut self, core: CoreId) {
        // NMIs bypass masking; the LocalApic is not involved.
        self.stats.counters.bump("nmi");
        let probe = self.pending_nmi_probe.remove(&core).flatten();
        let frame = Frame::Nmi(NmiFrame {
            stage: crate::cpu::NmiStage::Body,
            probe,
        });
        self.push_frame(core, frame, self.cfg.costs.irq_dispatch);
    }

    /// Inject an NMI from `from` into `target`, optionally probing a user
    /// address from the handler (kprobe-style, the §3.2 hazard).
    pub fn inject_nmi(&mut self, from: CoreId, target: CoreId, probe: Option<VirtAddr>) {
        let d = self.fabric.nmi_plan(from, target);
        self.pending_nmi_probe.insert(target, probe);
        self.engine
            .schedule_in(d.arrives_in, Event::NmiArrive { core: target });
    }

    /// One sample of the configured jitter (zero when noise is off).
    pub(crate) fn noise(&mut self) -> Cycles {
        if self.cfg.noise_cycles == 0 {
            Cycles::ZERO
        } else {
            Cycles::new(self.noise_rng.gen_range(self.cfg.noise_cycles + 1))
        }
    }

    /// Allocate a fresh shootdown id.
    pub(crate) fn alloc_sd_id(&mut self) -> ShootdownId {
        let id = ShootdownId(self.next_sd);
        self.next_sd += 1;
        id
    }
}

#[cfg(feature = "trace")]
impl Machine {
    /// Turn on structured event tracing with per-core ring buffers of
    /// `per_core_capacity` records each. Tracing never mutates simulation
    /// state: no RNG draws, no cost charges, no scheduling — metrics and
    /// digests are byte-identical with tracing on, off, or compiled out.
    pub fn start_tracing(&mut self, per_core_capacity: usize) {
        let n = self.cfg.topo.num_cores() as usize;
        self.tracer.enable(n, per_core_capacity);
    }

    /// Drain everything recorded so far into a [`tlbdown_trace::Trace`],
    /// leaving the tracer enabled (sequence numbers keep running, so a
    /// later capture merges after this one).
    pub fn take_trace(&mut self) -> tlbdown_trace::Trace {
        self.tracer.take()
    }
}

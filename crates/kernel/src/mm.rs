//! Address spaces, VMAs and the simulated page cache.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::sem::RwSem;
use tlbdown_core::MmGen;
use tlbdown_mem::AddrSpace;
use tlbdown_types::{CoreId, MmId, Pcid, PhysAddr, SimError, SimResult, VirtAddr, VirtRange};

/// Identifier of a simulated file (page-cache object).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// A simulated file: a page-cache page per 4KB offset plus dirty tracking.
#[derive(Debug)]
pub struct File {
    /// Page-cache frames, one per file page.
    pub pages: Vec<PhysAddr>,
    /// File pages with modified contents awaiting writeback.
    pub dirty: BTreeSet<u64>,
}

/// What backs a VMA.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmaKind {
    /// Private anonymous memory (demand-zero).
    Anon,
    /// Shared file mapping (`MAP_SHARED`): writes dirty the page cache.
    FileShared {
        /// Backing file.
        file: FileId,
        /// File offset of the mapping start, in pages.
        page_offset: u64,
    },
    /// Private file mapping (`MAP_PRIVATE`): reads share page-cache frames
    /// copy-on-write.
    FilePrivate {
        /// Backing file.
        file: FileId,
        /// File offset of the mapping start, in pages.
        page_offset: u64,
    },
}

/// A virtual memory area.
#[derive(Clone, Debug)]
pub struct Vma {
    /// The address range covered.
    pub range: VirtRange,
    /// Backing store.
    pub kind: VmaKind,
    /// Whether writes are permitted (`PROT_WRITE`).
    pub prot_write: bool,
    /// Whether execution is permitted (`PROT_EXEC`).
    pub prot_exec: bool,
    /// Whether this VMA is eligible for transparent-hugepage promotion
    /// (`MADV_HUGEPAGE`): a demand fault in a fully-unmapped, 2MB-aligned
    /// window of an anonymous THP VMA maps one 2MB leaf instead of a 4KB
    /// page. Ranged zaps split the leaf in place first (fracture).
    pub thp: bool,
}

impl Vma {
    /// Whether `va` falls inside this VMA.
    pub fn contains(&self, va: VirtAddr) -> bool {
        self.range.contains(va)
    }
}

/// An address space (`mm_struct`).
#[derive(Debug)]
pub struct Mm {
    /// Identifier.
    pub id: MmId,
    /// The (kernel-view) page tables. Under PTI the user view shares leaf
    /// PTEs; the simulation models the user view as the same table set
    /// accessed under the user PCID.
    pub space: AddrSpace,
    /// TLB generation counter.
    pub gen: MmGen,
    /// Cores on which this mm is (or may be) loaded, including lazy ones.
    pub cpumask: BTreeSet<CoreId>,
    /// VMAs by start address.
    pub vmas: BTreeMap<u64, Vma>,
    /// `mmap_sem`.
    pub mmap_sem: RwSem,
    /// The kernel-view PCID assigned to this mm (user view is the PTI
    /// sibling). The simulation assigns PCIDs globally and never recycles
    /// them — a documented simplification of Linux's 6-slot per-CPU cache.
    pub pcid: Pcid,
    /// Next unused address for anonymous mmap placement.
    pub mmap_cursor: VirtAddr,
}

impl Mm {
    /// Find the VMA containing `va`.
    pub fn vma_at(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas
            .range(..=va.as_u64())
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(va))
    }

    /// Insert a VMA; rejects overlap.
    pub fn insert_vma(&mut self, vma: Vma) -> SimResult<()> {
        let overlapping = self.vmas.values().any(|v| v.range.overlaps(&vma.range));
        if overlapping {
            return Err(SimError::InvalidArgument(format!(
                "vma {:?} overlaps an existing mapping",
                vma.range
            )));
        }
        self.vmas.insert(vma.range.start.as_u64(), vma);
        Ok(())
    }

    /// Remove VMAs fully covered by `range`; partial overlaps split.
    pub fn remove_vmas(&mut self, range: VirtRange) -> Vec<Vma> {
        let keys: Vec<u64> = self
            .vmas
            .iter()
            .filter(|(_, v)| v.range.overlaps(&range))
            .map(|(k, _)| *k)
            .collect();
        let mut removed = Vec::new();
        for k in keys {
            let Some(v) = self.vmas.remove(&k) else {
                continue;
            };
            // Split off any uncovered prefix/suffix.
            if v.range.start < range.start {
                let mut prefix = v.clone();
                prefix.range = VirtRange::new(v.range.start, range.start);
                self.vmas.insert(prefix.range.start.as_u64(), prefix);
            }
            if v.range.end > range.end {
                let mut suffix = v.clone();
                suffix.range = VirtRange::new(range.end, v.range.end);
                // File-backed VMAs must shift their page offset.
                suffix.kind = match v.kind {
                    VmaKind::FileShared { file, page_offset } => VmaKind::FileShared {
                        file,
                        page_offset: page_offset
                            + (range.end.as_u64() - v.range.start.as_u64()) / 4096,
                    },
                    VmaKind::FilePrivate { file, page_offset } => VmaKind::FilePrivate {
                        file,
                        page_offset: page_offset
                            + (range.end.as_u64() - v.range.start.as_u64()) / 4096,
                    },
                    k => k,
                };
                self.vmas.insert(suffix.range.start.as_u64(), suffix);
            }
            removed.push(v);
        }
        removed
    }
}

/// Reference counts for data frames shared across mappings (CoW, page
/// cache), i.e. `struct page::_refcount`.
#[derive(Debug, Default)]
pub struct FrameRefs {
    refs: HashMap<u64, u32>,
}

impl FrameRefs {
    /// New empty table.
    pub fn new() -> Self {
        FrameRefs::default()
    }

    /// Increment the refcount of the frame at `pa` (insert at 1).
    pub fn get_page(&mut self, pa: PhysAddr) {
        *self.refs.entry(pa.pfn()).or_insert(0) += 1;
    }

    /// Decrement; returns `Ok(true)` when the count hits zero (frame may
    /// be freed by the caller). An untracked frame — a double free or an
    /// unmatched put — surfaces as [`SimError::FrameUnderflow`] so the
    /// unmap/CoW hot paths record it instead of panicking.
    pub fn put_page(&mut self, pa: PhysAddr) -> SimResult<bool> {
        let Some(c) = self.refs.get_mut(&pa.pfn()) else {
            return Err(SimError::FrameUnderflow { pfn: pa.pfn() });
        };
        *c -= 1;
        if *c == 0 {
            self.refs.remove(&pa.pfn());
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Current count (0 if untracked).
    pub fn count(&self, pa: PhysAddr) -> u32 {
        self.refs.get(&pa.pfn()).copied().unwrap_or(0)
    }
}

#[cfg(feature = "trace")]
impl crate::machine::Machine {
    /// Record an address-space operation (`munmap`, `madvise_dontneed`,
    /// …) in the trace. Syscall bodies call this unconditionally; the
    /// no-trace build gets an empty inline twin.
    pub(crate) fn trace_mm_op(
        &mut self,
        core: tlbdown_types::CoreId,
        kind: &'static str,
        pages: u64,
    ) {
        crate::tracewire::trace_emit!(
            self,
            core,
            None::<u64>,
            tlbdown_trace::TraceEvent::MmOp { kind, pages }
        );
    }
}

#[cfg(not(feature = "trace"))]
impl crate::machine::Machine {
    #[inline(always)]
    pub(crate) fn trace_mm_op(
        &mut self,
        _core: tlbdown_types::CoreId,
        _kind: &'static str,
        _pages: u64,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbdown_mem::PhysMem;
    use tlbdown_types::PageSize;

    fn mm() -> (PhysMem, Mm) {
        let mut mem = PhysMem::new(1 << 16);
        let space = AddrSpace::new(&mut mem).unwrap();
        let m = Mm {
            id: MmId::new(1),
            space,
            gen: MmGen::new(),
            cpumask: BTreeSet::new(),
            vmas: BTreeMap::new(),
            mmap_sem: RwSem::new(),
            pcid: Pcid::new(1),
            mmap_cursor: VirtAddr::new(0x1000_0000),
        };
        (mem, m)
    }

    fn anon(start: u64, pages: u64) -> Vma {
        Vma {
            range: VirtRange::pages(VirtAddr::new(start), pages, PageSize::Size4K),
            kind: VmaKind::Anon,
            prot_write: true,
            prot_exec: false,
            thp: false,
        }
    }

    #[test]
    fn vma_lookup() {
        let (_mem, mut m) = mm();
        m.insert_vma(anon(0x1000, 4)).unwrap();
        m.insert_vma(anon(0x10000, 2)).unwrap();
        assert!(m.vma_at(VirtAddr::new(0x2000)).is_some());
        assert!(m.vma_at(VirtAddr::new(0x5000)).is_none());
        assert!(m.vma_at(VirtAddr::new(0x11000)).is_some());
        assert!(m.vma_at(VirtAddr::new(0xfff)).is_none());
    }

    #[test]
    fn overlapping_vma_rejected() {
        let (_mem, mut m) = mm();
        m.insert_vma(anon(0x1000, 4)).unwrap();
        assert!(m.insert_vma(anon(0x3000, 4)).is_err());
    }

    #[test]
    fn remove_vmas_splits_partial_overlap() {
        let (_mem, mut m) = mm();
        m.insert_vma(anon(0x1000, 10)).unwrap();
        // Unmap the middle 4 pages.
        let removed = m.remove_vmas(VirtRange::pages(VirtAddr::new(0x3000), 4, PageSize::Size4K));
        assert_eq!(removed.len(), 1);
        assert_eq!(m.vmas.len(), 2, "prefix and suffix remain");
        assert!(m.vma_at(VirtAddr::new(0x1000)).is_some());
        assert!(m.vma_at(VirtAddr::new(0x3000)).is_none());
        assert!(m.vma_at(VirtAddr::new(0x7000)).is_some());
    }

    #[test]
    fn file_suffix_offset_shifts() {
        let (_mem, mut m) = mm();
        let vma = Vma {
            range: VirtRange::pages(VirtAddr::new(0x1000), 8, PageSize::Size4K),
            kind: VmaKind::FileShared {
                file: FileId(1),
                page_offset: 10,
            },
            prot_write: true,
            prot_exec: false,
            thp: false,
        };
        m.insert_vma(vma).unwrap();
        m.remove_vmas(VirtRange::pages(VirtAddr::new(0x1000), 3, PageSize::Size4K));
        let suffix = m.vma_at(VirtAddr::new(0x4000)).unwrap();
        match suffix.kind {
            VmaKind::FileShared { page_offset, .. } => assert_eq!(page_offset, 13),
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn frame_refcounts() {
        let mut r = FrameRefs::new();
        let pa = PhysAddr::new(0x5000);
        r.get_page(pa);
        r.get_page(pa);
        assert_eq!(r.count(pa), 2);
        assert_eq!(r.put_page(pa), Ok(false));
        assert_eq!(r.put_page(pa), Ok(true));
        assert_eq!(r.count(pa), 0);
        // A third put is a double free: a typed error, not a panic.
        assert_eq!(
            r.put_page(pa),
            Err(SimError::FrameUnderflow { pfn: pa.pfn() })
        );
    }
}

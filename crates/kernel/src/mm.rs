//! Address spaces, VMAs and the simulated page cache.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use crate::sem::RwSem;
use tlbdown_core::MmGen;
use tlbdown_mem::{AddrSpace, Pte};
use tlbdown_types::{CoreId, MmId, Pcid, PhysAddr, SimError, SimResult, VirtAddr, VirtRange};

/// Identifier of a simulated file (page-cache object).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// A simulated file: a page-cache page per 4KB offset plus dirty tracking.
#[derive(Debug)]
pub struct File {
    /// Page-cache frames, one per file page.
    pub pages: Vec<PhysAddr>,
    /// File pages with modified contents awaiting writeback.
    pub dirty: BTreeSet<u64>,
}

/// What backs a VMA.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmaKind {
    /// Private anonymous memory (demand-zero).
    Anon,
    /// Shared file mapping (`MAP_SHARED`): writes dirty the page cache.
    FileShared {
        /// Backing file.
        file: FileId,
        /// File offset of the mapping start, in pages.
        page_offset: u64,
    },
    /// Private file mapping (`MAP_PRIVATE`): reads share page-cache frames
    /// copy-on-write.
    FilePrivate {
        /// Backing file.
        file: FileId,
        /// File offset of the mapping start, in pages.
        page_offset: u64,
    },
}

/// A virtual memory area.
#[derive(Clone, Debug)]
pub struct Vma {
    /// The address range covered.
    pub range: VirtRange,
    /// Backing store.
    pub kind: VmaKind,
    /// Whether writes are permitted (`PROT_WRITE`).
    pub prot_write: bool,
    /// Whether execution is permitted (`PROT_EXEC`).
    pub prot_exec: bool,
    /// Whether this VMA is eligible for transparent-hugepage promotion
    /// (`MADV_HUGEPAGE`): a demand fault in a fully-unmapped, 2MB-aligned
    /// window of an anonymous THP VMA maps one 2MB leaf instead of a 4KB
    /// page. Ranged zaps split the leaf in place first (fracture).
    pub thp: bool,
}

impl Vma {
    /// Whether `va` falls inside this VMA.
    pub fn contains(&self, va: VirtAddr) -> bool {
        self.range.contains(va)
    }
}

/// Capacity of the per-mm reuse-skip window (L7). Bounded so parked
/// frames — which stay referenced and unfreed while parked — cannot grow
/// without limit; overflow evicts the oldest entry and pays its flush debt.
pub const REUSE_WINDOW_CAP: usize = 32;

/// One parked page in the reuse-skip window: the exact PTE the zap
/// removed, the kernel-side PTE version recorded at park time, and the
/// oracle `(vpn, version)` pairs whose flush guarantee is still owed.
#[derive(Clone, Debug)]
pub struct ReuseEntry {
    /// The removed PTE, reinstalled verbatim on a window hit.
    pub pte: Pte,
    /// Kernel-side PTE version at park time; a reuse is only legal while
    /// this still equals the page's current version.
    pub version: u64,
    /// Oracle pairs owed to `retire_exact` if a debt flush ever runs.
    /// Empty once the guarantee has been declared (reuse restore, or the
    /// buggy retire-at-park shortcut).
    pub retire: Vec<(u64, u64)>,
}

/// The bounded per-mm window of recently zapped pages (arXiv 2409.10946).
///
/// `madvise(DONTNEED)` under `OptConfig::reuse_skip` parks zapped pages
/// here instead of flushing: the frame stays referenced, the PTE and its
/// version are remembered, and the oracle pairs stay *un-retired* (an
/// elided flush may never claim the guarantee). A demand fault that hits
/// the window with a matching version reinstalls the identical PTE with no
/// shootdown; any conflicting operation (munmap/mprotect/writeback/re-zap)
/// or a capacity eviction pays the debt — a real flush that retires the
/// parked pairs — before the page changes meaning.
#[derive(Debug, Default)]
pub struct ReuseWindow {
    entries: BTreeMap<u64, ReuseEntry>,
    order: VecDeque<u64>,
}

impl ReuseWindow {
    /// A fresh, empty window.
    pub fn new() -> Self {
        ReuseWindow::default()
    }

    /// Park a zapped page. Returns the evicted oldest entry when the
    /// window is at `cap` (the caller must pay its flush debt). The cap
    /// comes from [`crate::KernelConfig::reuse_window_cap`] so scenarios
    /// can shrink the window and exercise capacity evictions with small
    /// workloads.
    pub fn park(&mut self, vpn: u64, entry: ReuseEntry, cap: usize) -> Option<(u64, ReuseEntry)> {
        let mut evicted = None;
        if !self.entries.contains_key(&vpn) && self.entries.len() >= cap {
            if let Some(old_vpn) = self.order.pop_front() {
                evicted = self.entries.remove(&old_vpn).map(|e| (old_vpn, e));
            }
        }
        if self.entries.insert(vpn, entry).is_none() {
            self.order.push_back(vpn);
        }
        evicted
    }

    /// Remove and return the parked entry for `vpn`, if any.
    pub fn take(&mut self, vpn: u64) -> Option<ReuseEntry> {
        let e = self.entries.remove(&vpn);
        if e.is_some() {
            self.order.retain(|&v| v != vpn);
        }
        e
    }

    /// Whether `vpn` is parked.
    pub fn contains(&self, vpn: u64) -> bool {
        self.entries.contains_key(&vpn)
    }

    /// Peek at the parked entry for `vpn`.
    pub fn get(&self, vpn: u64) -> Option<&ReuseEntry> {
        self.entries.get(&vpn)
    }

    /// Mutable peek (version refresh on a covering re-zap).
    pub fn get_mut(&mut self, vpn: u64) -> Option<&mut ReuseEntry> {
        self.entries.get_mut(&vpn)
    }

    /// Remove and return every parked entry whose page lies in `range`
    /// (conflicting-operation invalidation), in ascending vpn order.
    pub fn take_range(&mut self, range: VirtRange) -> Vec<(u64, ReuseEntry)> {
        let lo = range.start.vpn();
        let hi = range.end.vpn();
        let vpns: Vec<u64> = self
            .entries
            .range(lo..hi.max(lo))
            .map(|(&v, _)| v)
            .collect();
        let mut out = Vec::new();
        for vpn in vpns {
            if let Some(e) = self.take(vpn) {
                out.push((vpn, e));
            }
        }
        out
    }

    /// Number of parked pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate parked entries in ascending vpn order (digest folding).
    pub fn iter(&self) -> impl Iterator<Item = (&u64, &ReuseEntry)> {
        self.entries.iter()
    }

    /// The FIFO eviction order, oldest first. Part of the protocol state:
    /// which entry an overflow evicts decides which debt flush runs next.
    pub fn fifo_order(&self) -> impl Iterator<Item = &u64> {
        self.order.iter()
    }
}

/// A stale PTE in a socket's numaPTE page-table replica: the translation
/// the replica still holds and the version it corresponds to. Only the
/// `buggy_numapte` injection ever creates these — the real L8 path syncs
/// every socket's replica deterministically at update time.
#[derive(Clone, Copy, Debug)]
pub struct StalePte {
    /// The old translation the un-synced replica still serves.
    pub pte: Pte,
    /// The modification version the replica last saw (current - 1 at the
    /// time the sync was skipped).
    pub version: u64,
}

/// An address space (`mm_struct`).
#[derive(Debug)]
pub struct Mm {
    /// Identifier.
    pub id: MmId,
    /// The (kernel-view) page tables. Under PTI the user view shares leaf
    /// PTEs; the simulation models the user view as the same table set
    /// accessed under the user PCID.
    pub space: AddrSpace,
    /// TLB generation counter.
    pub gen: MmGen,
    /// Cores on which this mm is (or may be) loaded, including lazy ones.
    pub cpumask: BTreeSet<CoreId>,
    /// VMAs by start address.
    pub vmas: BTreeMap<u64, Vma>,
    /// `mmap_sem`.
    pub mmap_sem: RwSem,
    /// The kernel-view PCID assigned to this mm (user view is the PTI
    /// sibling). The simulation assigns PCIDs globally and never recycles
    /// them — a documented simplification of Linux's 6-slot per-CPU cache.
    pub pcid: Pcid,
    /// Next unused address for anonymous mmap placement.
    pub mmap_cursor: VirtAddr,
    /// L7 reuse-skip window of recently zapped pages. Empty (and never
    /// consulted) unless `OptConfig::reuse_skip` is on.
    pub reuse: ReuseWindow,
    /// Kernel-side per-page PTE version counters backing the reuse-skip
    /// versioned-PTE check. Maintained only while `reuse_skip` is on, so
    /// the oracle-independent kernel can prove "nothing modified this page
    /// since it was parked" without consulting the checker.
    pub pte_versions: BTreeMap<u64, u64>,
    /// L8 numaPTE replica staleness, per socket: vpns whose per-socket
    /// page-table replica still holds an old PTE. The real replica-sync
    /// path keeps this empty; only `buggy_numapte` (skipping remote-socket
    /// sync) populates it.
    pub numa_stale: BTreeMap<u32, BTreeMap<u64, StalePte>>,
}

impl Mm {
    /// Find the VMA containing `va`.
    pub fn vma_at(&self, va: VirtAddr) -> Option<&Vma> {
        self.vmas
            .range(..=va.as_u64())
            .next_back()
            .map(|(_, v)| v)
            .filter(|v| v.contains(va))
    }

    /// Insert a VMA; rejects overlap.
    pub fn insert_vma(&mut self, vma: Vma) -> SimResult<()> {
        let overlapping = self.vmas.values().any(|v| v.range.overlaps(&vma.range));
        if overlapping {
            return Err(SimError::InvalidArgument(format!(
                "vma {:?} overlaps an existing mapping",
                vma.range
            )));
        }
        self.vmas.insert(vma.range.start.as_u64(), vma);
        Ok(())
    }

    /// Remove VMAs fully covered by `range`; partial overlaps split.
    pub fn remove_vmas(&mut self, range: VirtRange) -> Vec<Vma> {
        let keys: Vec<u64> = self
            .vmas
            .iter()
            .filter(|(_, v)| v.range.overlaps(&range))
            .map(|(k, _)| *k)
            .collect();
        let mut removed = Vec::new();
        for k in keys {
            let Some(v) = self.vmas.remove(&k) else {
                continue;
            };
            // Split off any uncovered prefix/suffix.
            if v.range.start < range.start {
                let mut prefix = v.clone();
                prefix.range = VirtRange::new(v.range.start, range.start);
                self.vmas.insert(prefix.range.start.as_u64(), prefix);
            }
            if v.range.end > range.end {
                let mut suffix = v.clone();
                suffix.range = VirtRange::new(range.end, v.range.end);
                // File-backed VMAs must shift their page offset.
                suffix.kind = match v.kind {
                    VmaKind::FileShared { file, page_offset } => VmaKind::FileShared {
                        file,
                        page_offset: page_offset
                            + (range.end.as_u64() - v.range.start.as_u64()) / 4096,
                    },
                    VmaKind::FilePrivate { file, page_offset } => VmaKind::FilePrivate {
                        file,
                        page_offset: page_offset
                            + (range.end.as_u64() - v.range.start.as_u64()) / 4096,
                    },
                    k => k,
                };
                self.vmas.insert(suffix.range.start.as_u64(), suffix);
            }
            removed.push(v);
        }
        removed
    }
}

/// Reference counts for data frames shared across mappings (CoW, page
/// cache), i.e. `struct page::_refcount`.
#[derive(Debug, Default)]
pub struct FrameRefs {
    refs: HashMap<u64, u32>,
}

impl FrameRefs {
    /// New empty table.
    pub fn new() -> Self {
        FrameRefs::default()
    }

    /// Increment the refcount of the frame at `pa` (insert at 1).
    pub fn get_page(&mut self, pa: PhysAddr) {
        *self.refs.entry(pa.pfn()).or_insert(0) += 1;
    }

    /// Decrement; returns `Ok(true)` when the count hits zero (frame may
    /// be freed by the caller). An untracked frame — a double free or an
    /// unmatched put — surfaces as [`SimError::FrameUnderflow`] so the
    /// unmap/CoW hot paths record it instead of panicking.
    pub fn put_page(&mut self, pa: PhysAddr) -> SimResult<bool> {
        let Some(c) = self.refs.get_mut(&pa.pfn()) else {
            return Err(SimError::FrameUnderflow { pfn: pa.pfn() });
        };
        *c -= 1;
        if *c == 0 {
            self.refs.remove(&pa.pfn());
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Current count (0 if untracked).
    pub fn count(&self, pa: PhysAddr) -> u32 {
        self.refs.get(&pa.pfn()).copied().unwrap_or(0)
    }
}

#[cfg(feature = "trace")]
impl crate::machine::Machine {
    /// Record an address-space operation (`munmap`, `madvise_dontneed`,
    /// …) in the trace. Syscall bodies call this unconditionally; the
    /// no-trace build gets an empty inline twin.
    pub(crate) fn trace_mm_op(
        &mut self,
        core: tlbdown_types::CoreId,
        kind: &'static str,
        pages: u64,
    ) {
        crate::tracewire::trace_emit!(
            self,
            core,
            None::<u64>,
            tlbdown_trace::TraceEvent::MmOp { kind, pages }
        );
    }
}

#[cfg(not(feature = "trace"))]
impl crate::machine::Machine {
    #[inline(always)]
    pub(crate) fn trace_mm_op(
        &mut self,
        _core: tlbdown_types::CoreId,
        _kind: &'static str,
        _pages: u64,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbdown_mem::PhysMem;
    use tlbdown_types::PageSize;

    fn mm() -> (PhysMem, Mm) {
        let mut mem = PhysMem::new(1 << 16);
        let space = AddrSpace::new(&mut mem).unwrap();
        let m = Mm {
            id: MmId::new(1),
            space,
            gen: MmGen::new(),
            cpumask: BTreeSet::new(),
            vmas: BTreeMap::new(),
            mmap_sem: RwSem::new(),
            pcid: Pcid::new(1),
            mmap_cursor: VirtAddr::new(0x1000_0000),
            reuse: ReuseWindow::new(),
            pte_versions: BTreeMap::new(),
            numa_stale: BTreeMap::new(),
        };
        (mem, m)
    }

    fn anon(start: u64, pages: u64) -> Vma {
        Vma {
            range: VirtRange::pages(VirtAddr::new(start), pages, PageSize::Size4K),
            kind: VmaKind::Anon,
            prot_write: true,
            prot_exec: false,
            thp: false,
        }
    }

    #[test]
    fn vma_lookup() {
        let (_mem, mut m) = mm();
        m.insert_vma(anon(0x1000, 4)).unwrap();
        m.insert_vma(anon(0x10000, 2)).unwrap();
        assert!(m.vma_at(VirtAddr::new(0x2000)).is_some());
        assert!(m.vma_at(VirtAddr::new(0x5000)).is_none());
        assert!(m.vma_at(VirtAddr::new(0x11000)).is_some());
        assert!(m.vma_at(VirtAddr::new(0xfff)).is_none());
    }

    #[test]
    fn overlapping_vma_rejected() {
        let (_mem, mut m) = mm();
        m.insert_vma(anon(0x1000, 4)).unwrap();
        assert!(m.insert_vma(anon(0x3000, 4)).is_err());
    }

    #[test]
    fn remove_vmas_splits_partial_overlap() {
        let (_mem, mut m) = mm();
        m.insert_vma(anon(0x1000, 10)).unwrap();
        // Unmap the middle 4 pages.
        let removed = m.remove_vmas(VirtRange::pages(VirtAddr::new(0x3000), 4, PageSize::Size4K));
        assert_eq!(removed.len(), 1);
        assert_eq!(m.vmas.len(), 2, "prefix and suffix remain");
        assert!(m.vma_at(VirtAddr::new(0x1000)).is_some());
        assert!(m.vma_at(VirtAddr::new(0x3000)).is_none());
        assert!(m.vma_at(VirtAddr::new(0x7000)).is_some());
    }

    #[test]
    fn file_suffix_offset_shifts() {
        let (_mem, mut m) = mm();
        let vma = Vma {
            range: VirtRange::pages(VirtAddr::new(0x1000), 8, PageSize::Size4K),
            kind: VmaKind::FileShared {
                file: FileId(1),
                page_offset: 10,
            },
            prot_write: true,
            prot_exec: false,
            thp: false,
        };
        m.insert_vma(vma).unwrap();
        m.remove_vmas(VirtRange::pages(VirtAddr::new(0x1000), 3, PageSize::Size4K));
        let suffix = m.vma_at(VirtAddr::new(0x4000)).unwrap();
        match suffix.kind {
            VmaKind::FileShared { page_offset, .. } => assert_eq!(page_offset, 13),
            _ => panic!("wrong kind"),
        }
    }

    fn parked(version: u64) -> ReuseEntry {
        ReuseEntry {
            pte: Pte::new(PhysAddr::new(0x8000), tlbdown_types::PteFlags::user_rw()),
            version,
            retire: vec![(1, version)],
        }
    }

    #[test]
    fn reuse_window_parks_and_takes() {
        let mut w = ReuseWindow::new();
        assert!(w.park(7, parked(1), REUSE_WINDOW_CAP).is_none());
        assert!(w.contains(7));
        let e = w.take(7).unwrap();
        assert_eq!(e.version, 1);
        assert!(w.is_empty());
        assert!(w.take(7).is_none());
    }

    #[test]
    fn reuse_window_evicts_oldest_at_capacity() {
        let mut w = ReuseWindow::new();
        for vpn in 0..REUSE_WINDOW_CAP as u64 {
            assert!(w.park(vpn, parked(1), REUSE_WINDOW_CAP).is_none());
        }
        // One more: vpn 0 (the oldest) must pop out for debt payment.
        let (evicted_vpn, _) = w.park(1000, parked(2), REUSE_WINDOW_CAP).unwrap();
        assert_eq!(evicted_vpn, 0);
        assert_eq!(w.len(), REUSE_WINDOW_CAP);
        assert!(!w.contains(0) && w.contains(1000));
    }

    #[test]
    fn reuse_window_take_range_invalidates_overlap() {
        let mut w = ReuseWindow::new();
        for vpn in [2u64, 5, 9] {
            w.park(vpn, parked(1), REUSE_WINDOW_CAP);
        }
        // Pages [4, 8) cover vpn 5 only.
        let hit = w.take_range(VirtRange::pages(
            VirtAddr::new(4 * 4096),
            4,
            PageSize::Size4K,
        ));
        assert_eq!(hit.iter().map(|(v, _)| *v).collect::<Vec<_>>(), vec![5]);
        assert!(w.contains(2) && w.contains(9) && !w.contains(5));
    }

    #[test]
    fn frame_refcounts() {
        let mut r = FrameRefs::new();
        let pa = PhysAddr::new(0x5000);
        r.get_page(pa);
        r.get_page(pa);
        assert_eq!(r.count(pa), 2);
        assert_eq!(r.put_page(pa), Ok(false));
        assert_eq!(r.put_page(pa), Ok(true));
        assert_eq!(r.count(pa), 0);
        // A third put is a double free: a typed error, not a panic.
        assert_eq!(
            r.put_page(pa),
            Err(SimError::FrameUnderflow { pfn: pa.pfn() })
        );
    }
}

//! Per-core execution state: frame stacks, interrupt suspension, and the
//! stage machines for syscalls, faults and shootdown IRQs.
//!
//! Each core runs a stack of [`Frame`]s: the bottom frame executes the
//! pinned user thread; page faults and system calls push kernel frames;
//! IPIs and NMIs push interrupt frames on top of whatever is running.
//! Every frame advances through explicit stages; the machine charges each
//! stage's cost by scheduling the next `Resume` event, and interrupts
//! preserve the remaining cost of the suspended stage (see
//! `ResumeState::Suspended`), so interrupted work takes longer in
//! simulated time exactly as it would on hardware.

use std::collections::VecDeque;

use tlbdown_apic::LocalApic;
use tlbdown_core::{BatchState, CpuTlbState, FlushAction, FlushTlbInfo, ShootdownId};
use tlbdown_types::PhysAddr;
use tlbdown_types::{CoreId, Cycles, VirtAddr};

use crate::prog::Syscall;

/// Privilege mode of a core, as visible to cost accounting (PTI makes
/// user-mode interrupt delivery more expensive, §5.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CpuMode {
    /// Executing a user program.
    User,
    /// Executing kernel code (syscall, fault, IRQ).
    Kernel,
    /// Idle kernel thread (lazy-TLB mode).
    Idle,
}

/// Scheduling state of one frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResumeState {
    /// A `Resume` event is scheduled to fire when the current stage's
    /// work completes.
    Scheduled {
        /// Absolute completion time.
        end: Cycles,
    },
    /// The frame was interrupted mid-stage; this much work remains.
    Suspended {
        /// Remaining stage cost.
        remaining: Cycles,
    },
    /// The frame is waiting on a condition (acks, semaphore); a waker or
    /// the uncovering pop will reschedule it.
    Blocked,
}

/// A frame plus its scheduling state.
#[derive(Debug)]
pub struct FrameSlot {
    /// The execution frame.
    pub frame: Frame,
    /// Its scheduling state.
    pub resume: ResumeState,
}

/// One entry of a core's execution stack.
#[derive(Debug)]
pub enum Frame {
    /// Idle kernel thread (bottom frame when no thread is runnable).
    Idle,
    /// The pinned user thread's program.
    Prog(ProgFrame),
    /// An in-flight system call.
    Syscall(SyscallFrame),
    /// An in-flight page fault.
    Fault(FaultFrame),
    /// The TLB-shootdown interrupt handler.
    Irq(IrqFrame),
    /// A non-maskable interrupt handler.
    Nmi(NmiFrame),
}

/// User-program frame state.
#[derive(Debug)]
pub struct ProgFrame {
    /// Index of the thread in `Machine::threads`.
    pub thread: usize,
    /// A pending access to run (set when returning from a fault so the
    /// faulting access retries).
    pub pending_access: Option<(VirtAddr, bool, bool)>,
    /// Value to deliver to the program on its next step.
    pub retval: u64,
    /// Start time and kind of the fault the pending access is retrying
    /// after; the access-latency metric (Figure 9) spans fault + retry.
    pub fault_info: Option<(Cycles, &'static str)>,
}

/// Stages of a system call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyscallStage {
    /// Kernel entry completed; acquire `mmap_sem`.
    AcquireSem,
    /// Blocked on `mmap_sem`.
    WaitSem,
    /// Execute the syscall body (PTE updates etc.).
    Body,
    /// Run the current shootdown (`sd` field) to completion.
    Shootdown,
    /// Pop the next deferred batch flush (batching barrier) or release.
    BarrierNext,
    /// Release `mmap_sem` and wake waiters.
    Release,
    /// Kernel exit: run deferred in-context user flushes, charge exit.
    Exit,
}

/// A system-call frame.
#[derive(Debug)]
pub struct SyscallFrame {
    /// Retire pairs accumulated while batching (attached to the last
    /// barrier shootdown so nothing retires before every flush ran).
    pub batched_retires: Vec<(u64, u64)>,
    /// The call being serviced.
    pub call: Syscall,
    /// Current stage.
    pub stage: SyscallStage,
    /// Value returned to the program.
    pub retval: u64,
    /// Active shootdown run, if any.
    pub sd: Option<ShootdownRun>,
    /// Flushes queued to run sequentially (multi-VMA fdatasync, and the
    /// §4.2 batching barrier at `mmap_sem` release), each with its retire
    /// pairs.
    pub barrier: VecDeque<(FlushTlbInfo, Vec<(u64, u64)>)>,
    /// Frames whose freeing must wait until the covering flushes complete
    /// (Linux's mmu-gather discipline; freeing earlier is the LATR hazard).
    pub pending_frees: Vec<PhysAddr>,
    /// Start time (latency accounting).
    pub started: Cycles,
    /// Whether this frame entered batched mode and must end it.
    pub batched: bool,
    /// Whether this frame *ever* entered batched mode (Exit re-sync).
    pub did_batch: bool,
    /// §4.2 per-invocation batching state (`batched_mode` + 4 slots).
    pub batch: BatchState,
}

/// Stages of a page fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultStage {
    /// Fault dispatch done; classify and resolve.
    Resolve,
    /// Run the CoW shootdown (remote part).
    Shootdown,
    /// Return to the faulting access.
    Return,
}

/// A page-fault frame.
#[derive(Debug)]
pub struct FaultFrame {
    /// Faulting address.
    pub va: VirtAddr,
    /// Whether the faulting access was a write.
    pub write: bool,
    /// Whether the faulting access was an instruction fetch.
    pub is_fetch: bool,
    /// Current stage.
    pub stage: FaultStage,
    /// Active shootdown run, if any (CoW with sharers).
    pub sd: Option<ShootdownRun>,
    /// Frames to free once the flush completes.
    pub pending_frees: Vec<PhysAddr>,
    /// Start time (latency accounting).
    pub started: Cycles,
    /// Classification label for statistics ("anon", "cow", "file", ...).
    pub label: &'static str,
}

/// Stages of the initiator-side shootdown state machine.
///
/// The stage *order* encodes §3.1: the baseline runs
/// `LocalFlush → UserFlush → SendIpis → Wait`, while concurrent flushing
/// runs `SendIpis → LocalFlush → UserFlush → Wait`, overlapping the local
/// work with IPI delivery and remote flushing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SdStage {
    /// Charge `shootdown_prep`, compute targets, decide ordering.
    Prep,
    /// Cacheline work + ICR writes for all targets.
    SendIpis,
    /// Local kernel-PCID flush, one entry (or one full flush) per step.
    LocalFlush,
    /// Local user-PCID flush under PTI: eager INVPCID, interleaved with
    /// ack-waiting (§3.4 interplay), or deferred.
    UserFlush,
    /// Spin-wait for acknowledgements.
    Wait,
    /// All done.
    Done,
}

/// How the initiator removes its own stale translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LocalMode {
    /// Ordinary local flush (INVLPG loop or full flush).
    Normal,
    /// §4.1 CoW trick: an atomic no-op RMW at the faulting address
    /// replaces the local INVLPG.
    CowTrick {
        /// The faulting address to touch.
        va: VirtAddr,
    },
}

/// The initiator-side state of one shootdown, embedded in syscall and
/// fault frames.
#[derive(Debug)]
pub struct ShootdownRun {
    /// The flush description.
    pub info: FlushTlbInfo,
    /// Current stage.
    pub stage: SdStage,
    /// Registered shootdown id (None when there are no remote targets).
    pub sd: Option<ShootdownId>,
    /// Whether the local flush is a full flush.
    pub local_full: bool,
    /// Individual kernel-PCID entries to INVLPG locally.
    pub kernel_entries: Vec<VirtAddr>,
    /// Index into `kernel_entries`.
    pub kidx: usize,
    /// Individual user-PCID entries to flush (PTI only).
    pub user_entries: Vec<VirtAddr>,
    /// Index into `user_entries`.
    pub uidx: usize,
    /// Number of remote targets at send time.
    pub initial_targets: usize,
    /// How the local flush is performed.
    pub local_mode: LocalMode,
    /// `(vpn, version)` pairs to retire in the oracle when this run
    /// completes (snapshotted at PTE-modification time).
    pub retire: Vec<(u64, u64)>,
    /// The local flush decision, computed on entry to `LocalFlush`.
    pub decided: Option<FlushAction>,
    /// Whether the user-PCID side was already handled (full-flush deferral).
    pub user_handled: bool,
    /// Trace-layer bookkeeping: the trace operation id for this run (the
    /// shootdown id when one was registered, a synthetic local id
    /// otherwise). Set on leaving `Prep`; `None` when tracing is off.
    pub trace_op: Option<u64>,
    /// Trace-layer bookkeeping: the last stage a phase mark was emitted
    /// for, so each stage transition is recorded exactly once.
    pub trace_stage: Option<SdStage>,
}

impl ShootdownRun {
    /// Build a run for `info`; the flush entry lists are derived from the
    /// info's range unless it is (effectively) a full flush.
    pub fn new(info: FlushTlbInfo) -> Self {
        let local_full = info.effective_full();
        let entries: Vec<VirtAddr> = if local_full {
            Vec::new()
        } else {
            info.range.iter_pages(info.stride).collect()
        };
        ShootdownRun {
            info,
            stage: SdStage::Prep,
            sd: None,
            local_full,
            kernel_entries: entries.clone(),
            kidx: 0,
            user_entries: entries,
            uidx: 0,
            initial_targets: 0,
            local_mode: LocalMode::Normal,
            retire: Vec::new(),
            decided: None,
            user_handled: false,
            trace_op: None,
            trace_stage: None,
        }
    }

    /// Use the §4.1 CoW access trick for the local flush.
    ///
    /// The trick also makes the local *user-PCID* flush unnecessary: the
    /// faulting access is a write, which architecturally cannot translate
    /// through the stale write-protected entry — the hardware re-walks and
    /// caches the new PTE when the access retries.
    pub fn with_cow_trick(mut self, va: VirtAddr) -> Self {
        self.local_mode = LocalMode::CowTrick { va };
        self.user_handled = true;
        self
    }
}

/// Stages of the shootdown IRQ handler (responder side).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IrqStage {
    /// Vectoring/dispatch completed; drain the call-single queue.
    DrainQueue,
    /// Fetch the next work item's cachelines.
    FetchWork,
    /// Early acknowledgement (if instructed) then flush, or flush first.
    FlushDecide,
    /// Flush one kernel-PCID entry per step.
    FlushEntry,
    /// Flush one user-PCID entry per step (PTI, eager mode).
    UserFlushEntry,
    /// Acknowledge after flushing (baseline ordering).
    LateAck,
    /// End of interrupt: EOI, pop, resume the interrupted frame.
    Eoi,
}

/// What the responder decided to do for the current work item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IrqAct {
    /// Nothing decided yet.
    Pending,
    /// Generation already covered — nothing to do (§5.2 storm skips).
    Skip,
    /// Flush the listed entries.
    Selective,
    /// Full flush.
    Full,
}

/// The shootdown interrupt handler frame.
#[derive(Debug)]
pub struct IrqFrame {
    /// Dispatch start (responder-interruption accounting, §5.1).
    pub started: Cycles,
    /// Current stage.
    pub stage: IrqStage,
    /// Work items drained from the CSQ.
    pub queue: Vec<ShootdownId>,
    /// Index of the current work item.
    pub qidx: usize,
    /// Whether the current item was early-acknowledged.
    pub acked: bool,
    /// Kernel-PCID entries to flush for the current item.
    pub entries: Vec<VirtAddr>,
    /// Index into `entries`.
    pub eidx: usize,
    /// User-PCID entries to flush eagerly (PTI baseline).
    pub user_entries: Vec<VirtAddr>,
    /// Index into `user_entries`.
    pub uidx: usize,
    /// Generation to sync to when the current item's flush completes.
    pub upto: u64,
    /// Decision for the current item.
    pub act: IrqAct,
    /// Work description captured at fetch time (the shootdown record may
    /// be reaped by the initiator after an early ack).
    pub cur_info: Option<FlushTlbInfo>,
    /// Initiator of the current item.
    pub cur_initiator: CoreId,
    /// Whether the current item allows early acknowledgement.
    pub cur_early: bool,
    /// Failure injection (`buggy_quarantine`): the current item was
    /// early-acked *without* the `acked_unflushed` bump, so `LateAck`
    /// must skip the matching decrement or a healthy item's §3.2 window
    /// accounting would be stolen.
    pub cur_buggy_ack: bool,
}

/// Stages of the NMI handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NmiStage {
    /// Handler body: optionally probe user memory (kprobe-style).
    Body,
    /// Return from NMI.
    Done,
}

/// An NMI frame (failure injection for the §3.2 hazard).
#[derive(Debug)]
pub struct NmiFrame {
    /// Current stage.
    pub stage: NmiStage,
    /// User address the handler will probe, if any.
    pub probe: Option<VirtAddr>,
}

/// A core.
#[derive(Debug)]
pub struct Cpu {
    /// This core's id.
    pub id: CoreId,
    /// `cpu_tlbstate`.
    pub tlb_state: CpuTlbState,
    /// Interrupt reception state.
    pub lapic: LocalApic,
    /// Execution stack (bottom = thread / idle).
    pub frames: Vec<FrameSlot>,
    /// Threads pinned to this core, by index into `Machine::threads`.
    pub runqueue: VecDeque<usize>,
    /// Currently running thread.
    pub current: Option<usize>,
    /// Call-single queue: pending shootdown work pushed by initiators.
    pub csq: VecDeque<ShootdownId>,
    /// Resume-token; stale `Resume` events are dropped.
    pub resume_token: u64,
    /// Shootdowns this core has acknowledged but not yet flushed
    /// (the §3.2 early-ack window; consulted by `nmi_uaccess_okay`).
    pub acked_unflushed: u64,
    /// §4.2: this core is inside a batched-mode syscall — it touches no
    /// user memory, so initiators skip its IPI; it re-syncs via the
    /// generation check before returning to userspace.
    pub in_batched_syscall: bool,
    /// Per-mm synced generation for previously-loaded address spaces whose
    /// PCID-tagged entries may survive in the TLB.
    pub pcid_gens: std::collections::HashMap<tlbdown_types::MmId, u64>,
}

impl Cpu {
    /// The current privilege mode, derived from the frame stack.
    pub fn mode(&self) -> CpuMode {
        match self.frames.last() {
            None
            | Some(FrameSlot {
                frame: Frame::Idle, ..
            }) => CpuMode::Idle,
            Some(FrameSlot {
                frame: Frame::Prog(_),
                ..
            }) => CpuMode::User,
            Some(_) => CpuMode::Kernel,
        }
    }

    /// Whether the frame *under* the current interrupt frame was user mode
    /// (the PTI dispatch-cost rule; evaluated before pushing).
    pub fn mode_below_top(&self) -> CpuMode {
        if self.frames.len() < 2 {
            return CpuMode::Idle;
        }
        match &self.frames[self.frames.len() - 2].frame {
            Frame::Prog(_) => CpuMode::User,
            Frame::Idle => CpuMode::Idle,
            _ => CpuMode::Kernel,
        }
    }
}

//! Frame stepping: programs, system calls, page faults and NMIs.
//!
//! Every step function follows the engine's contract: perform the current
//! stage's *effects* immediately, then return how long the stage occupies
//! the core. Cross-core-visible effects (acknowledgements, IPIs) add their
//! propagation latency explicitly in `shoot.rs`.

use tlbdown_core::{cow_flush_method, CowFlushMethod, FlushTlbInfo};
use tlbdown_mem::{FrameState, Pte};
use tlbdown_types::{
    CoreId, Cycles, MmId, PageSize, Pcid, PteFlags, SimError, VirtAddr, VirtRange,
};

use crate::cpu::{
    FaultFrame, FaultStage, Frame, FrameSlot, NmiFrame, NmiStage, ProgFrame, ResumeState,
    ShootdownRun, SyscallFrame, SyscallStage,
};
use crate::machine::Machine;
use crate::mm::VmaKind;
use crate::prog::{ProgAction, ProgCtx, Syscall};
use crate::sem::SemMode;
use crate::shoot::SdOut;
use crate::tracewire::trace_emit;
#[cfg(feature = "trace")]
use tlbdown_trace::TraceEvent;

/// Result of stepping one frame.
pub(crate) enum StepOut {
    /// Stage effects applied; occupy the core for this long.
    Continue(Cycles),
    /// Waiting on a condition; a waker (or uncovering pop) re-steps.
    Block,
    /// Frame finished; charge `cost`, optionally deliver a return value to
    /// the program frame below.
    Done {
        /// Final cost (e.g. kernel exit).
        cost: Cycles,
        /// Syscall return value.
        retval: Option<u64>,
    },
    /// Keep this frame (suspended at zero remaining); run `frame` on top.
    Push {
        /// The frame to push.
        frame: Frame,
        /// Its initial (dispatch/entry) cost.
        cost: Cycles,
    },
    /// Replace this frame with another (thread switch on the base frame).
    Replace {
        /// The replacement frame.
        frame: Frame,
        /// Switch cost.
        cost: Cycles,
    },
    /// A kernel-side error (e.g. a vanished address space): record it,
    /// abort this frame, and deliver a failure retval to the program
    /// below. Only kernel frames (syscalls/faults) may return this — the
    /// base frame must stay on the stack.
    Error(SimError),
}

impl Machine {
    /// Step the top frame of `core`.
    pub(crate) fn step_core(&mut self, core: CoreId) {
        let Some(mut slot) = self.cpus[core.index()].frames.pop() else {
            return;
        };
        let out = match &mut slot.frame {
            Frame::Idle => self.step_idle(core),
            Frame::Prog(pf) => self.step_prog(core, pf),
            Frame::Syscall(sf) => self.step_syscall(core, sf),
            Frame::Fault(ff) => self.step_fault(core, ff),
            Frame::Irq(irf) => self.step_irq(core, irf),
            Frame::Nmi(nf) => self.step_nmi(core, nf),
        };
        // Errors propagate through the event loop: record, then unwind
        // the frame like a completed one with a failure retval.
        let out = match out {
            StepOut::Error(e) => {
                self.record_error(e);
                StepOut::Done {
                    cost: Cycles::ZERO,
                    retval: Some(u64::MAX),
                }
            }
            other => other,
        };
        match out {
            StepOut::Continue(c) => {
                self.cpus[core.index()].frames.push(slot);
                self.schedule_step(core, c);
            }
            StepOut::Block => {
                slot.resume = ResumeState::Blocked;
                self.cpus[core.index()].frames.push(slot);
            }
            StepOut::Done { cost, retval } => {
                drop(slot);
                if let Some(r) = retval {
                    if let Some(FrameSlot {
                        frame: Frame::Prog(pf),
                        ..
                    }) = self.cpus[core.index()].frames.last_mut()
                    {
                        pf.retval = r;
                    }
                }
                let resume_extra = match self.cpus[core.index()].frames.last() {
                    Some(FrameSlot {
                        resume: ResumeState::Suspended { remaining },
                        ..
                    }) => Some(*remaining),
                    Some(FrameSlot {
                        resume: ResumeState::Blocked,
                        ..
                    }) => Some(Cycles::ZERO),
                    _ => None,
                };
                if let Some(rem) = resume_extra {
                    self.schedule_step(core, cost + rem);
                }
            }
            StepOut::Push { frame, cost } => {
                slot.resume = ResumeState::Suspended {
                    remaining: Cycles::ZERO,
                };
                self.cpus[core.index()].frames.push(slot);
                self.cpus[core.index()].frames.push(FrameSlot {
                    frame,
                    resume: ResumeState::Blocked,
                });
                self.schedule_step(core, cost);
            }
            StepOut::Replace { frame, cost } => {
                drop(slot);
                self.cpus[core.index()].frames.push(FrameSlot {
                    frame,
                    resume: ResumeState::Blocked,
                });
                self.schedule_step(core, cost);
            }
            StepOut::Error(_) => unreachable!("rewritten to Done above"),
        }
    }

    // --- Idle / scheduling ---

    fn step_idle(&mut self, core: CoreId) -> StepOut {
        if let Some(idx) = self.cpus[core.index()].runqueue.pop_front() {
            match self.context_switch_in(core, idx) {
                Ok(cost) => StepOut::Replace {
                    frame: Frame::Prog(ProgFrame {
                        thread: idx,
                        pending_access: None,
                        retval: 0,
                        fault_info: None,
                    }),
                    cost,
                },
                Err(e) => {
                    // A thread whose mm vanished can never run; park it
                    // and retry the runqueue on the next idle step.
                    self.record_error(e);
                    self.threads[idx].done = true;
                    StepOut::Continue(self.cfg.costs.thread_switch)
                }
            }
        } else {
            // Stay idle in lazy-TLB mode.
            StepOut::Block
        }
    }

    /// Switch `core` to thread `idx`; returns the switch cost. Handles the
    /// lazy-TLB exit generation check and PCID bookkeeping. Fails (before
    /// mutating any state) if the thread's address space no longer exists.
    pub(crate) fn context_switch_in(
        &mut self,
        core: CoreId,
        idx: usize,
    ) -> Result<Cycles, SimError> {
        let mm_id = self.threads[idx].mm;
        if !self.mms.contains_key(&mm_id) {
            return Err(SimError::NoSuchMm(mm_id));
        }
        let prev_mm = self.cpus[core.index()].tlb_state.loaded_mm;
        let mut cost = self.cfg.costs.thread_switch;
        self.stats.counters.bump("context_switch");

        if prev_mm != mm_id {
            cost += self.cfg.costs.cr3_switch;
            // Pending deferred user flushes of the previous mm cannot ride
            // the normal return-to-user path any more; resolve them now
            // with a full user-PCID flush.
            if self.cpus[core.index()]
                .tlb_state
                .deferred_user
                .take()
                .is_some()
            {
                let user_pcid = self.cpus[core.index()].tlb_state.user_pcid;
                self.tlbs[core.index()].flush_pcid(user_pcid);
                cost += self.cfg.costs.full_flush;
            }
            if prev_mm != MmId::KERNEL {
                let local = self.cpus[core.index()].tlb_state.local_tlb_gen;
                self.cpus[core.index()].pcid_gens.insert(prev_mm, local);
                if let Some(mm) = self.mms.get_mut(&prev_mm) {
                    mm.cpumask.remove(&core);
                }
            }
            let mm = self.mms.get(&mm_id).ok_or(SimError::NoSuchMm(mm_id))?;
            let cur_gen = mm.gen.current();
            let pcid = mm.pcid;
            let synced = self.cpus[core.index()].pcid_gens.get(&mm_id).copied();
            let start_gen = match synced {
                Some(g) if g < cur_gen => {
                    // Stale PCID-tagged entries survive the CR3 reload;
                    // flush them (lazy-exit / switch-in sync, §2.2).
                    self.tlbs[core.index()].flush_pcid(pcid);
                    cost += self.cfg.costs.full_flush;
                    if self.cfg.safe_mode {
                        self.tlbs[core.index()].flush_pcid(pcid.user_sibling());
                        cost += self.cfg.costs.full_flush;
                    }
                    self.stats.counters.bump("switch_in_flush");
                    cur_gen
                }
                Some(g) => g,
                None => cur_gen, // fresh PCID on this core: nothing cached
            };
            self.cpus[core.index()].tlb_state =
                tlbdown_core::CpuTlbState::load_mm(mm_id, pcid, start_gen);
            if let Some(m) = self.mms.get_mut(&mm_id) {
                m.cpumask.insert(core);
            }
        } else {
            // Same mm (possibly returning from lazy mode): sync the
            // generation if flushes were skipped while lazy.
            let cur_gen = self.mms.get(&mm_id).map(|m| m.gen.current()).unwrap_or(0);
            let local = self.cpus[core.index()].tlb_state.local_tlb_gen;
            if local < cur_gen {
                let pcid = self.cpus[core.index()].tlb_state.kernel_pcid;
                self.tlbs[core.index()].flush_pcid(pcid);
                cost += self.cfg.costs.full_flush;
                if self.cfg.safe_mode {
                    let upcid = self.cpus[core.index()].tlb_state.user_pcid;
                    self.tlbs[core.index()].flush_pcid(upcid);
                    cost += self.cfg.costs.full_flush;
                }
                self.cpus[core.index()].tlb_state.local_tlb_gen = cur_gen;
                self.stats.counters.bump("lazy_exit_flush");
            }
        }
        // Leave lazy mode: write the lazy indication line.
        self.cpus[core.index()].tlb_state.is_lazy = false;
        let script = self.smp.set_lazy(core);
        cost += tlbdown_core::smp::run_script(&mut self.dir, core, &script);
        self.cpus[core.index()].current = Some(idx);
        Ok(cost)
    }

    /// Transition `core` to the idle kernel thread (lazy-TLB mode, §3.3).
    fn enter_idle(&mut self, core: CoreId) -> StepOut {
        self.cpus[core.index()].current = None;
        while let Some(idx) = self.cpus[core.index()].runqueue.pop_front() {
            match self.context_switch_in(core, idx) {
                Ok(cost) => {
                    return StepOut::Replace {
                        frame: Frame::Prog(ProgFrame {
                            thread: idx,
                            pending_access: None,
                            retval: 0,
                            fault_info: None,
                        }),
                        cost,
                    }
                }
                Err(e) => {
                    self.record_error(e);
                    self.threads[idx].done = true;
                }
            }
        }
        self.cpus[core.index()].tlb_state.is_lazy = true;
        let script = self.smp.set_lazy(core);
        let cost = tlbdown_core::smp::run_script(&mut self.dir, core, &script)
            + self.cfg.costs.thread_switch;
        self.stats.counters.bump("enter_lazy");
        StepOut::Replace {
            frame: Frame::Idle,
            cost,
        }
    }

    // --- User program execution ---

    fn step_prog(&mut self, core: CoreId, pf: &mut ProgFrame) -> StepOut {
        let idx = pf.thread;
        if self.threads[idx].done {
            return self.enter_idle(core);
        }
        if let Some((va, write, fetch)) = pf.pending_access {
            return self.do_access(core, pf, va, write, fetch);
        }
        let ctx = ProgCtx {
            retval: pf.retval,
            now: self.engine.now(),
        };
        pf.retval = 0;
        let action = self.threads[idx].prog.next(&ctx);
        match action {
            ProgAction::Nop => StepOut::Continue(Cycles::ZERO),
            ProgAction::Compute(c) => StepOut::Continue(c),
            ProgAction::Access { va, write } => {
                pf.pending_access = Some((va, write, false));
                self.do_access(core, pf, va, write, false)
            }
            ProgAction::Fetch { va } => {
                pf.pending_access = Some((va, false, true));
                self.do_access(core, pf, va, false, true)
            }
            ProgAction::Syscall(call) => {
                let entry = Cycles::new(self.cfg.costs.syscall(self.cfg.safe_mode).as_u64() / 2);
                StepOut::Push {
                    frame: Frame::Syscall(SyscallFrame {
                        call,
                        stage: SyscallStage::AcquireSem,
                        retval: 0,
                        sd: None,
                        batched_retires: Vec::new(),
                        barrier: Default::default(),
                        pending_frees: Vec::new(),
                        started: self.engine.now(),
                        batched: false,
                        did_batch: false,
                        batch: tlbdown_core::BatchState::new(),
                    }),
                    cost: entry,
                }
            }
            ProgAction::Yield => {
                let cpu = &mut self.cpus[core.index()];
                if let Some(next) = cpu.runqueue.pop_front() {
                    match self.context_switch_in(core, next) {
                        Ok(cost) => {
                            self.cpus[core.index()].runqueue.push_back(idx);
                            StepOut::Replace {
                                frame: Frame::Prog(ProgFrame {
                                    thread: next,
                                    pending_access: None,
                                    retval: 0,
                                    fault_info: None,
                                }),
                                cost,
                            }
                        }
                        Err(e) => {
                            // The target's mm vanished: keep running the
                            // current thread instead of switching.
                            self.record_error(e);
                            self.threads[next].done = true;
                            StepOut::Continue(self.cfg.costs.thread_switch)
                        }
                    }
                } else {
                    StepOut::Continue(self.cfg.costs.thread_switch)
                }
            }
            ProgAction::Exit => {
                self.threads[idx].done = true;
                self.stats.counters.bump("thread_exit");
                self.enter_idle(core)
            }
        }
    }

    /// Perform one user-mode access (or instruction fetch).
    fn do_access(
        &mut self,
        core: CoreId,
        pf: &mut ProgFrame,
        va: VirtAddr,
        write: bool,
        fetch: bool,
    ) -> StepOut {
        let mm_id = self.threads[pf.thread].mm;
        debug_assert_eq!(
            self.cpus[core.index()].tlb_state.loaded_mm,
            mm_id,
            "user thread running without its mm loaded"
        );
        let pcid = self.user_mode_pcid(core);
        // L8: a page walk resolves through this socket's page-table replica.
        // If the replica holds a stale entry for this page (only possible on
        // the buggy_numapte path — the real protocol syncs eagerly), install
        // it in the TLB before the architectural access below.
        if self.numa_pte_active() {
            self.numa_stale_walk(core, mm_id, va, write, fetch);
        }
        let Some(mm) = self.mms.get_mut(&mm_id) else {
            // The address space vanished under the thread: record it and
            // park the thread rather than bringing the machine down.
            self.record_error(SimError::NoSuchMm(mm_id));
            self.threads[pf.thread].done = true;
            return self.enter_idle(core);
        };
        let res = if fetch {
            self.tlbs[core.index()].fetch(pcid, va, true, &mut mm.space, &self.cfg.costs)
        } else {
            self.tlbs[core.index()].access(pcid, va, write, true, &mut mm.space, &self.cfg.costs)
        };
        match res {
            Ok(acc) => {
                pf.pending_access = None;
                if let Some((t0, label)) = pf.fault_info.take() {
                    let lat = self.engine.now() + acc.cost - t0;
                    self.stats.record_fault(core, label, lat);
                }
                if !acc.hit {
                    trace_emit!(self, core, None::<u64>, TraceEvent::PageWalk { va: va.0 });
                }
                let page = va.align_down(PageSize::Size4K);
                if self.cfg.oracle {
                    if acc.hit {
                        self.oracle.check_hit(
                            core,
                            pcid.is_user_view(),
                            mm_id,
                            page,
                            "user access",
                        );
                    } else {
                        self.oracle_filled(core, pcid.is_user_view(), mm_id, &acc.entry);
                    }
                }
                // Writes keep the dirty bit honest even on cached entries
                // (the MMU's microcode D-bit walk).
                if write {
                    if let Some(mm) = self.mms.get_mut(&mm_id) {
                        let _ = mm.space.mark_used(va, true);
                    }
                    self.dirty_index.entry(mm_id).or_default().insert(va.vpn());
                }
                StepOut::Continue(acc.cost)
            }
            Err(_) => {
                let jitter = self.noise();
                StepOut::Push {
                    frame: Frame::Fault(FaultFrame {
                        va,
                        write,
                        is_fetch: fetch,
                        stage: FaultStage::Resolve,
                        sd: None,
                        pending_frees: Vec::new(),
                        started: self.engine.now(),
                        label: "fault",
                    }),
                    cost: self.cfg.costs.fault_dispatch(self.cfg.safe_mode) + jitter,
                }
            }
        }
    }

    /// The PCID user code translates under.
    pub(crate) fn user_mode_pcid(&self, core: CoreId) -> Pcid {
        let ts = &self.cpus[core.index()].tlb_state;
        if self.cfg.safe_mode {
            ts.user_pcid
        } else {
            ts.kernel_pcid
        }
    }

    /// The mm of the thread currently on `core` (loaded mm as fallback).
    pub(crate) fn current_mm(&self, core: CoreId) -> MmId {
        self.cpus[core.index()]
            .current
            .map(|i| self.threads[i].mm)
            .unwrap_or(self.cpus[core.index()].tlb_state.loaded_mm)
    }

    // --- System calls ---

    fn step_syscall(&mut self, core: CoreId, sf: &mut SyscallFrame) -> StepOut {
        match sf.stage {
            SyscallStage::AcquireSem | SyscallStage::WaitSem => {
                let mm_id = self.current_mm(core);
                let mode = match sf.call {
                    Syscall::MmapAnon { .. }
                    | Syscall::MmapFile { .. }
                    | Syscall::Munmap { .. }
                    | Syscall::Mprotect { .. } => Some(SemMode::Write),
                    Syscall::MadviseDontNeed { .. }
                    | Syscall::Msync { .. }
                    | Syscall::Fdatasync { .. } => Some(SemMode::Read),
                    Syscall::Send { .. } => None,
                };
                if let Some(mode) = mode {
                    let Some(mm) = self.mms.get_mut(&mm_id) else {
                        return StepOut::Error(SimError::NoSuchMm(mm_id));
                    };
                    let acquired = if sf.stage == SyscallStage::AcquireSem {
                        mm.mmap_sem.acquire(core, mode)
                    } else {
                        mm.mmap_sem.held_by(core)
                    };
                    if !acquired {
                        sf.stage = SyscallStage::WaitSem;
                        self.stats.counters.bump("mmap_sem_wait");
                        return StepOut::Block;
                    }
                }
                // §4.2: enter batched mode for the suitable syscalls.
                if self.cfg.opts.userspace_batching
                    && matches!(
                        sf.call,
                        Syscall::Munmap { .. }
                            | Syscall::MadviseDontNeed { .. }
                            | Syscall::Msync { .. }
                            | Syscall::Fdatasync { .. }
                    )
                {
                    sf.batch.begin();
                    sf.batched = true;
                    sf.did_batch = true;
                    // §4.2: signal initiators that this core is inside a
                    // batched syscall and needs no IPI.
                    self.cpus[core.index()].in_batched_syscall = true;
                }
                sf.stage = SyscallStage::Body;
                StepOut::Continue(Cycles::ZERO)
            }
            SyscallStage::Body => match self.syscall_body(core, sf) {
                Ok(cost) => {
                    sf.stage = if sf.sd.is_some() {
                        SyscallStage::Shootdown
                    } else {
                        SyscallStage::BarrierNext
                    };
                    StepOut::Continue(cost)
                }
                Err(e) => {
                    // Fail the call, but still run Release so the
                    // semaphore and batched-mode flag are dropped.
                    self.record_error(e);
                    sf.retval = u64::MAX;
                    sf.sd = None;
                    sf.stage = SyscallStage::Release;
                    StepOut::Continue(Cycles::ZERO)
                }
            },
            SyscallStage::Shootdown => {
                let Some(run) = sf.sd.as_mut() else {
                    // A Shootdown stage with no run in flight is a broken
                    // frame transition (corrupted barrier queue); fail the
                    // call instead of taking the whole simulation down.
                    self.record_error(SimError::InvalidArgument(
                        "syscall shootdown stage entered with no run in flight".into(),
                    ));
                    sf.retval = u64::MAX;
                    sf.stage = SyscallStage::Release;
                    return StepOut::Continue(Cycles::ZERO);
                };
                match self.step_sd(core, run) {
                    SdOut::Continue(c) => StepOut::Continue(c),
                    SdOut::Block => StepOut::Block,
                    SdOut::Done(c) => {
                        if let Some(run) = sf.sd.take() {
                            self.finish_sd(core, &run);
                        }
                        sf.stage = SyscallStage::BarrierNext;
                        StepOut::Continue(c)
                    }
                }
            }
            SyscallStage::BarrierNext => {
                if let Some((info, retire)) = sf.barrier.pop_front() {
                    let mut run = ShootdownRun::new(info);
                    run.retire = retire;
                    sf.sd = Some(run);
                    sf.stage = SyscallStage::Shootdown;
                } else {
                    sf.stage = SyscallStage::Release;
                }
                StepOut::Continue(Cycles::ZERO)
            }
            SyscallStage::Release => {
                let mm_id = self.current_mm(core);
                // §4.2 barrier: flush everything deferred in batched mode
                // *before* dropping the semaphore.
                if sf.batched {
                    sf.batched = false;
                    let infos = sf.batch.end();
                    if !infos.is_empty() {
                        self.stats
                            .counters
                            .add("batched_flushes", infos.len() as u64);
                        // Nothing retires before the whole barrier ran:
                        // the accumulated pairs ride on the last flush.
                        let n = infos.len();
                        let retires = std::mem::take(&mut sf.batched_retires);
                        sf.barrier = infos
                            .into_iter()
                            .enumerate()
                            .map(|(i, info)| {
                                if i + 1 == n {
                                    (info, retires.clone())
                                } else {
                                    (info, Vec::new())
                                }
                            })
                            .collect();
                        sf.stage = SyscallStage::BarrierNext;
                        return StepOut::Continue(Cycles::ZERO);
                    }
                }
                self.cpus[core.index()].in_batched_syscall = false;
                for pa in sf.pending_frees.drain(..) {
                    self.mem.free(pa);
                }
                let woken: Vec<CoreId> = match self.mms.get_mut(&mm_id) {
                    Some(mm) if mm.mmap_sem.held_by(core) => mm.mmap_sem.release(core),
                    Some(_) => Vec::new(),
                    None => {
                        self.record_error(SimError::NoSuchMm(mm_id));
                        Vec::new()
                    }
                };
                for c in woken {
                    self.wake(c);
                }
                sf.stage = SyscallStage::Exit;
                StepOut::Continue(Cycles::ZERO)
            }
            SyscallStage::Exit => {
                let mut flush_cost = Cycles::ZERO;
                // §4.2 barrier tail: flushes skipped while this core was
                // in batched mode are applied via the generation check
                // before leaving the kernel ("a memory barrier to check
                // for TLB flushes every time the kernel prepares to leave
                // kernel mode").
                if sf.did_batch {
                    let mm_id = self.current_mm(core);
                    let cur_gen = self.mms.get(&mm_id).map(|m| m.gen.current()).unwrap_or(0);
                    let ts = &self.cpus[core.index()].tlb_state;
                    if ts.local_tlb_gen < cur_gen {
                        let kpcid = ts.kernel_pcid;
                        let upcid = ts.user_pcid;
                        self.tlbs[core.index()].flush_pcid(kpcid);
                        flush_cost += self.cfg.costs.full_flush;
                        if self.cfg.safe_mode {
                            self.tlbs[core.index()].flush_pcid(upcid);
                            flush_cost += self.cfg.costs.full_flush;
                        }
                        self.cpus[core.index()].tlb_state.local_tlb_gen = cur_gen;
                        self.cpus[core.index()].tlb_state.deferred_user.take();
                        self.stats.counters.bump("batched_exit_flush");
                    }
                }
                flush_cost += self.kernel_exit_user_flush(core);
                let exit = Cycles::new(self.cfg.costs.syscall(self.cfg.safe_mode).as_u64() / 2);
                let lat = self.engine.now() + flush_cost + exit - sf.started;
                self.stats.record_syscall(core, syscall_name(&sf.call), lat);
                StepOut::Done {
                    cost: flush_cost + exit,
                    retval: Some(sf.retval),
                }
            }
        }
    }

    /// Execute the syscall body: PTE updates, flush planning. Returns the
    /// body cost; sets `sf.sd` / `sf.barrier` / `sf.retval`. A missing
    /// address space surfaces as `SimError::NoSuchMm` instead of a panic;
    /// the caller fails the syscall and releases held state.
    fn syscall_body(&mut self, core: CoreId, sf: &mut SyscallFrame) -> Result<Cycles, SimError> {
        let mm_id = self.current_mm(core);
        let costs = self.cfg.costs.clone();
        let trace_pages = match sf.call {
            Syscall::MmapAnon { pages }
            | Syscall::MmapFile { pages, .. }
            | Syscall::Munmap { pages, .. }
            | Syscall::MadviseDontNeed { pages, .. }
            | Syscall::Msync { pages, .. }
            | Syscall::Mprotect { pages, .. }
            | Syscall::Send { pages, .. } => pages,
            Syscall::Fdatasync { .. } => 0,
        };
        self.trace_mm_op(core, syscall_name(&sf.call), trace_pages);
        match sf.call {
            Syscall::MmapAnon { pages } => {
                let mm = self.mms.get_mut(&mm_id).ok_or(SimError::NoSuchMm(mm_id))?;
                let addr = mm.mmap_cursor;
                mm.mmap_cursor = mm.mmap_cursor.add((pages + 1) * 4096); // +guard page
                let vma = crate::mm::Vma {
                    range: VirtRange::pages(addr, pages, PageSize::Size4K),
                    kind: VmaKind::Anon,
                    prot_write: true,
                    prot_exec: false,
                    thp: false,
                };
                mm.insert_vma(vma)?;
                sf.retval = addr.as_u64();
                Ok(costs.pte_update)
            }
            Syscall::MmapFile {
                file,
                page_offset,
                pages,
                shared,
            } => {
                let mm = self.mms.get_mut(&mm_id).ok_or(SimError::NoSuchMm(mm_id))?;
                let addr = mm.mmap_cursor;
                mm.mmap_cursor = mm.mmap_cursor.add((pages + 1) * 4096);
                let kind = if shared {
                    VmaKind::FileShared { file, page_offset }
                } else {
                    VmaKind::FilePrivate { file, page_offset }
                };
                let vma = crate::mm::Vma {
                    range: VirtRange::pages(addr, pages, PageSize::Size4K),
                    kind,
                    prot_write: true,
                    prot_exec: false,
                    thp: false,
                };
                mm.insert_vma(vma)?;
                sf.retval = addr.as_u64();
                Ok(costs.pte_update)
            }
            Syscall::Munmap { addr, pages } => {
                let range = VirtRange::pages(addr, pages, PageSize::Size4K);
                self.split_huge_leaves(mm_id, range);
                // L7: parked pages the unmap covers must pay their elided
                // flush before the mapping disappears.
                self.reuse_invalidate_range(core, sf, mm_id, range);
                let (removed_count, info, changed) = {
                    let mm = self.mms.get_mut(&mm_id).ok_or(SimError::NoSuchMm(mm_id))?;
                    mm.remove_vmas(range);
                    let out = mm.space.unmap_range(&mut self.mem, range);
                    let n = out.removed.len();
                    let mut info = None;
                    if n > 0 || out.freed_tables {
                        let gen = mm.gen.bump();
                        let mut i = FlushTlbInfo::ranged(mm_id, range, PageSize::Size4K, gen);
                        if out.freed_tables {
                            i = i.with_freed_tables();
                        }
                        info = Some(i);
                    }
                    let changed: Vec<(VirtAddr, Pte)> =
                        out.removed.iter().map(|&(va, pte, _)| (va, pte)).collect();
                    for (_, pte, _) in &out.removed {
                        match self.frame_refs.put_page(pte.addr) {
                            Ok(true) => sf.pending_frees.push(pte.addr),
                            Ok(false) => {}
                            Err(e) => self.record_error(e),
                        }
                    }
                    (n as u64, info, changed)
                };
                let mut cost = costs.pte_update * removed_count.max(1);
                if let Some(info) = info {
                    let retire = if self.cfg.oracle {
                        self.oracle.range_modified(mm_id, range)
                    } else {
                        Vec::new()
                    };
                    self.reuse_bump_versions(mm_id, range);
                    cost += self.numa_replica_update(core, mm_id, &changed, &retire);
                    self.queue_flush(core, sf, info, retire);
                }
                sf.retval = 0;
                Ok(cost)
            }
            Syscall::MadviseDontNeed { addr, pages } => {
                let range = VirtRange::pages(addr, pages, PageSize::Size4K);
                self.split_huge_leaves(mm_id, range);
                // L7 reuse-skip: park the zapped pages (frames stay
                // referenced, oracle pairs stay un-retired) and elide the
                // shootdown entirely. Capacity evictions and stale twins
                // pay their debt through queue_flush inside the helper.
                if self.cfg.opts.reuse_skip {
                    let removed = {
                        let mm = self.mms.get_mut(&mm_id).ok_or(SimError::NoSuchMm(mm_id))?;
                        mm.space.zap_range(range).removed
                    };
                    let n = removed.len() as u64;
                    let changed: Vec<(VirtAddr, Pte)> =
                        removed.iter().map(|&(va, pte, _)| (va, pte)).collect();
                    self.reuse_park_zap(core, sf, mm_id, range, removed);
                    // L8 on top of L7: the zap is still a PTE update the
                    // socket replicas must see, flush elision or not.
                    let sync = self.numa_replica_update(core, mm_id, &changed, &[]);
                    sf.retval = 0;
                    return Ok(costs.pte_update * n.max(1) + sync);
                }
                let (removed_count, info, changed) = {
                    let mm = self.mms.get_mut(&mm_id).ok_or(SimError::NoSuchMm(mm_id))?;
                    let out = mm.space.zap_range(range);
                    let n = out.removed.len();
                    let info = if n > 0 {
                        let gen = mm.gen.bump();
                        Some(FlushTlbInfo::ranged(mm_id, range, PageSize::Size4K, gen))
                    } else {
                        None
                    };
                    let changed: Vec<(VirtAddr, Pte)> =
                        out.removed.iter().map(|&(va, pte, _)| (va, pte)).collect();
                    for (_, pte, _) in &out.removed {
                        match self.frame_refs.put_page(pte.addr) {
                            Ok(true) => sf.pending_frees.push(pte.addr),
                            Ok(false) => {}
                            Err(e) => self.record_error(e),
                        }
                    }
                    (n as u64, info, changed)
                };
                let mut cost = costs.pte_update * removed_count.max(1);
                if let Some(info) = info {
                    let retire = if self.cfg.oracle {
                        self.oracle.range_modified(mm_id, range)
                    } else {
                        Vec::new()
                    };
                    cost += self.numa_replica_update(core, mm_id, &changed, &retire);
                    self.queue_flush(core, sf, info, retire);
                }
                sf.retval = 0;
                Ok(cost)
            }
            Syscall::Msync { addr, pages } => {
                let range = VirtRange::pages(addr, pages, PageSize::Size4K);
                let cost = self.writeback_range(core, sf, mm_id, range)?;
                sf.retval = 0;
                Ok(cost)
            }
            Syscall::Fdatasync { file } => {
                // Write back through every VMA of this mm mapping the file.
                let vma_ranges: Vec<VirtRange> = self
                    .mms
                    .get(&mm_id)
                    .ok_or(SimError::NoSuchMm(mm_id))?
                    .vmas
                    .values()
                    .filter(|v| matches!(v.kind, VmaKind::FileShared { file: f, .. } if f == file))
                    .map(|v| v.range)
                    .collect();
                let mut cost = costs.pte_update;
                for range in vma_ranges {
                    cost += self.writeback_range(core, sf, mm_id, range)?;
                }
                sf.retval = 0;
                Ok(cost)
            }
            Syscall::Mprotect { addr, pages, write } => {
                let range = VirtRange::pages(addr, pages, PageSize::Size4K);
                self.split_huge_leaves(mm_id, range);
                // L7: a permission change over parked pages invalidates
                // their "same permissions" premise — pay the debt first.
                self.reuse_invalidate_range(core, sf, mm_id, range);
                let (n, info, changed) = {
                    let mm = self.mms.get_mut(&mm_id).ok_or(SimError::NoSuchMm(mm_id))?;
                    let (set, clear) = if write {
                        (PteFlags::WRITABLE, PteFlags::empty())
                    } else {
                        (PteFlags::empty(), PteFlags::WRITABLE)
                    };
                    let changed = mm.space.protect_range(range, set, clear);
                    let n = changed.len() as u64;
                    // Only permission *reductions* require a flush.
                    let info = if n > 0 && !write {
                        let gen = mm.gen.bump();
                        Some(FlushTlbInfo::ranged(mm_id, range, PageSize::Size4K, gen))
                    } else {
                        None
                    };
                    let changed: Vec<(VirtAddr, Pte)> =
                        changed.into_iter().map(|(va, pte, _)| (va, pte)).collect();
                    (n, info, changed)
                };
                let mut cost = costs.pte_update * n.max(1);
                if let Some(info) = info {
                    let retire = if self.cfg.oracle {
                        self.oracle.range_modified(mm_id, range)
                    } else {
                        Vec::new()
                    };
                    self.reuse_bump_versions(mm_id, range);
                    cost += self.numa_replica_update(core, mm_id, &changed, &retire);
                    // mprotect is not on the §4.2 list: always synchronous.
                    let mut run = ShootdownRun::new(info);
                    run.retire = retire;
                    sf.sd = Some(run);
                }
                sf.retval = 0;
                Ok(cost)
            }
            Syscall::Send { addr, pages } => {
                // Kernel reads the user buffer through the kernel PCID.
                let mut cost = Cycles::ZERO;
                let kpcid = self.cpus[core.index()].tlb_state.kernel_pcid;
                for i in 0..pages {
                    let va = addr.add(i * 4096);
                    let res = {
                        let mm = self.mms.get_mut(&mm_id).ok_or(SimError::NoSuchMm(mm_id))?;
                        self.tlbs[core.index()].access(
                            kpcid,
                            va,
                            false,
                            false,
                            &mut mm.space,
                            &costs,
                        )
                    };
                    match res {
                        Ok(acc) => {
                            if self.cfg.oracle {
                                let page = va.align_down(PageSize::Size4K);
                                if acc.hit {
                                    self.oracle.check_hit(
                                        core,
                                        false,
                                        mm_id,
                                        page,
                                        "kernel uaccess",
                                    );
                                } else {
                                    self.oracle_filled(core, false, mm_id, &acc.entry);
                                }
                            }
                            cost += acc.cost + costs.mem_access * 63; // copy the rest of the page
                        }
                        Err(_) => {
                            // Unfaulted page: the kernel would fault it in;
                            // charge a fault's worth and resolve inline.
                            cost += costs.fault_dispatch(self.cfg.safe_mode);
                            if self.resolve_demand_fault(core, mm_id, va, false).is_none() {
                                self.stats.counters.bump("send_efault");
                            }
                        }
                    }
                }
                sf.retval = 0;
                Ok(cost)
            }
        }
    }

    /// Write-protect and clean the dirty PTEs of `range` (writeback),
    /// queueing one TLB flush per dirty page — the real `fdatasync` /
    /// `msync` shape that makes these syscalls flush-heavy (§5.2). Returns
    /// the scan cost.
    fn writeback_range(
        &mut self,
        core: CoreId,
        sf: &mut SyscallFrame,
        mm_id: MmId,
        range: VirtRange,
    ) -> Result<Cycles, SimError> {
        let costs = self.cfg.costs.clone();
        // L7: writeback write-protects pages, so parked entries in the
        // range lose their "same permissions" premise — pay the debt.
        self.reuse_invalidate_range(core, sf, mm_id, range);
        // Visit only pages the dirty index names within the range.
        let candidates: Vec<u64> = self
            .dirty_index
            .get(&mm_id)
            .map(|set| {
                set.range(range.start.vpn()..range.end.align_up(PageSize::Size4K).vpn())
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        let mut cleaned: Vec<(VirtAddr, Pte)> = Vec::new();
        {
            let mm = self.mms.get_mut(&mm_id).ok_or(SimError::NoSuchMm(mm_id))?;
            for vpn in &candidates {
                let va = VirtAddr::new(vpn << 12);
                match mm.space.entry(va) {
                    Some((pte, _)) if pte.dirty() => {
                        mm.space.update_entry(va, |p| {
                            p.without(PteFlags::DIRTY | PteFlags::WRITABLE)
                                .with(PteFlags::SOFT_CLEAN)
                        })?;
                        cleaned.push((va, pte));
                    }
                    _ => {}
                }
            }
        }
        if let Some(set) = self.dirty_index.get_mut(&mm_id) {
            for vpn in &candidates {
                set.remove(vpn);
            }
        }
        // Writeback to the (pmem) page cache: mark file pages clean.
        for (va, _) in &cleaned {
            if let Some(vma) = self.mms.get(&mm_id).and_then(|m| m.vma_at(*va)).cloned() {
                if let VmaKind::FileShared { file, page_offset } = vma.kind {
                    if let Some(f) = self.files.get_mut(&file) {
                        let fpage = page_offset + (va.as_u64() - vma.range.start.as_u64()) / 4096;
                        f.dirty.remove(&fpage);
                    }
                }
            }
        }
        // One flush (and oracle stamp) per cleaned page.
        let mut sync_cost = Cycles::ZERO;
        for (va, old_pte) in &cleaned {
            let page_range = VirtRange::pages(*va, 1, PageSize::Size4K);
            let retire = if self.cfg.oracle {
                self.oracle.range_modified(mm_id, page_range)
            } else {
                Vec::new()
            };
            self.reuse_bump_versions(mm_id, page_range);
            sync_cost += self.numa_replica_update(core, mm_id, &[(*va, *old_pte)], &retire);
            let gen = self
                .mms
                .get_mut(&mm_id)
                .ok_or(SimError::NoSuchMm(mm_id))?
                .gen
                .bump();
            let info = FlushTlbInfo::ranged(mm_id, page_range, PageSize::Size4K, gen);
            self.queue_flush(core, sf, info, retire);
        }
        self.stats
            .counters
            .add("writeback_pages", cleaned.len() as u64);
        Ok(costs.pte_update * (cleaned.len() as u64).max(1) + sync_cost)
    }

    /// Route a flush either through batching (§4.2) or synchronously.
    /// `retire` is the oracle snapshot to apply when the flush completes.
    pub(crate) fn queue_flush(
        &mut self,
        _core: CoreId,
        sf: &mut SyscallFrame,
        info: FlushTlbInfo,
        retire: Vec<(u64, u64)>,
    ) {
        if sf.batched {
            sf.batch.defer(info);
            sf.batched_retires.extend(retire);
            self.stats.counters.bump("flush_deferred");
        } else if sf.sd.is_none() {
            let mut run = ShootdownRun::new(info);
            run.retire = retire;
            sf.sd = Some(run);
        } else {
            sf.barrier.push_back((info, retire));
        }
    }

    // --- Page faults ---

    fn step_fault(&mut self, core: CoreId, ff: &mut FaultFrame) -> StepOut {
        match ff.stage {
            FaultStage::Resolve => self.fault_resolve(core, ff),
            FaultStage::Shootdown => {
                let Some(run) = ff.sd.as_mut() else {
                    // A Shootdown stage with no run is a broken frame
                    // transition; record it and unwind through Return so
                    // the deferred frees still happen.
                    self.record_error(SimError::InvalidArgument(
                        "fault shootdown stage entered with no run in flight".into(),
                    ));
                    ff.stage = FaultStage::Return;
                    return StepOut::Continue(Cycles::ZERO);
                };
                match self.step_sd(core, run) {
                    SdOut::Continue(c) => StepOut::Continue(c),
                    SdOut::Block => StepOut::Block,
                    SdOut::Done(c) => {
                        if let Some(run) = ff.sd.take() {
                            self.finish_sd(core, &run);
                        }
                        ff.stage = FaultStage::Return;
                        StepOut::Continue(c)
                    }
                }
            }
            FaultStage::Return => {
                for pa in ff.pending_frees.drain(..) {
                    self.mem.free(pa);
                }
                let flush_cost = self.kernel_exit_user_flush(core);
                // Hand the latency bookkeeping to the program frame below:
                // the Figure 9 metric spans fault + retried access. (This
                // frame is popped while stepping, so `last_mut()` is the
                // frame the fault interrupted.)
                let mut handed_off = false;
                if let Some(crate::cpu::FrameSlot {
                    frame: Frame::Prog(pf),
                    ..
                }) = self.cpus[core.index()].frames.last_mut()
                {
                    if pf.pending_access.is_some() {
                        pf.fault_info = Some((ff.started, ff.label));
                        handed_off = true;
                    }
                }
                if !handed_off {
                    let lat = self.engine.now() + flush_cost - ff.started;
                    self.stats.record_fault(core, ff.label, lat);
                }
                StepOut::Done {
                    cost: flush_cost,
                    retval: None,
                }
            }
        }
    }

    fn fault_resolve(&mut self, core: CoreId, ff: &mut FaultFrame) -> StepOut {
        let mm_id = self.current_mm(core);
        let costs = self.cfg.costs.clone();
        let va = ff.va;
        let page = va.align_down(PageSize::Size4K);
        if !self.mms.contains_key(&mm_id) {
            self.record_error(SimError::NoSuchMm(mm_id));
            return self.segfault(core, ff);
        }
        let Some(vma) = self.mms[&mm_id].vma_at(va).cloned() else {
            return self.segfault(core, ff);
        };
        let existing = self.mms[&mm_id].space.entry(page);
        // Spurious fault: between the faulting access and this handler
        // running, another core's fault may have fixed the PTE (e.g.
        // re-enabled writes on a writeback-cleaned shared page). Real
        // kernels detect this and simply retry the access.
        if let Some((pte, _)) = existing {
            if pte.flags.permits(ff.write, ff.is_fetch, true) {
                self.stats.counters.bump("spurious_fault");
                ff.label = "spurious";
                ff.stage = FaultStage::Return;
                return StepOut::Continue(Cycles::new(100));
            }
        }
        match existing {
            None => {
                ff.label = match vma.kind {
                    VmaKind::Anon => "anon",
                    VmaKind::FileShared { .. } => "file_shared",
                    VmaKind::FilePrivate { .. } => "file_private",
                };
                if self
                    .resolve_demand_fault(core, mm_id, va, ff.write)
                    .is_none()
                {
                    return self.segfault(core, ff);
                }
                ff.stage = FaultStage::Return;
                StepOut::Continue(costs.page_alloc)
            }
            Some((pte, _size)) => {
                // Protection fault paths.
                if ff.write && pte.flags.contains(PteFlags::COW) {
                    return self.resolve_cow(core, ff, mm_id, page, pte);
                }
                if ff.write
                    && !pte.writable()
                    && vma.prot_write
                    && matches!(vma.kind, VmaKind::FileShared { .. })
                {
                    // Writeback-protected shared page: re-enable writes and
                    // re-dirty. Permissions become *more* permissive, so no
                    // flush is needed (hardware re-walks).
                    ff.label = "re_dirty";
                    {
                        let upd = {
                            let Some(mm) = self.mms.get_mut(&mm_id) else {
                                self.record_error(SimError::NoSuchMm(mm_id));
                                return self.segfault(core, ff);
                            };
                            mm.space.update_entry(page, |p| {
                                p.with(PteFlags::WRITABLE | PteFlags::DIRTY)
                                    .without(PteFlags::SOFT_CLEAN)
                            })
                        };
                        if let Err(e) = upd {
                            // The PTE vanished between the lookup above and
                            // the update (it was `Some` moments ago): treat
                            // it as an unsatisfiable fault, not a panic.
                            self.record_error(e);
                            return self.segfault(core, ff);
                        }
                        if let VmaKind::FileShared { file, page_offset } = vma.kind {
                            if let Some(f) = self.files.get_mut(&file) {
                                let fpage =
                                    page_offset + (page.as_u64() - vma.range.start.as_u64()) / 4096;
                                f.dirty.insert(fpage);
                            }
                        }
                        self.dirty_index
                            .entry(mm_id)
                            .or_default()
                            .insert(page.vpn());
                    }
                    ff.stage = FaultStage::Return;
                    StepOut::Continue(costs.pte_update)
                } else {
                    self.segfault(core, ff)
                }
            }
        }
    }

    /// Handle a CoW write fault (§4.1).
    fn resolve_cow(
        &mut self,
        core: CoreId,
        ff: &mut FaultFrame,
        mm_id: MmId,
        page: VirtAddr,
        old_pte: Pte,
    ) -> StepOut {
        let costs = self.cfg.costs.clone();
        ff.label = "cow";
        self.stats.counters.bump("cow_fault");
        // §4.1 hazard: the CPU may speculatively re-cache the old PTE
        // between the fault and the PTE update.
        if self.cfg.speculative_fill_on_fault {
            let pcid = self.user_mode_pcid(core);
            self.tlbs[core.index()].fill_speculative(pcid, page, PageSize::Size4K, old_pte);
        }
        // Copy the page and swap the PTE.
        let new_pa = match self.mem.alloc(FrameState::UserPage) {
            Ok(pa) => pa,
            Err(_) => return self.segfault(core, ff),
        };
        self.frame_refs.get_page(new_pa);
        match self.frame_refs.put_page(old_pte.addr) {
            Ok(true) => ff.pending_frees.push(old_pte.addr),
            Ok(false) => {}
            Err(e) => self.record_error(e),
        }
        let new_flags = old_pte
            .flags
            .with(PteFlags::WRITABLE | PteFlags::DIRTY | PteFlags::ACCESSED)
            .without(PteFlags::COW);
        let upd = {
            let Some(mm) = self.mms.get_mut(&mm_id) else {
                self.record_error(SimError::NoSuchMm(mm_id));
                return self.segfault(core, ff);
            };
            mm.space.update_entry(page, |_| Pte::new(new_pa, new_flags))
        };
        if let Err(e) = upd {
            // The CoW PTE was unmapped between the fault and the copy
            // (e.g. by a racing unmap): fail the access, keep the machine.
            self.record_error(e);
            return self.segfault(core, ff);
        }
        let mut retire = Vec::new();
        if self.cfg.oracle {
            let v = self.oracle.pte_modified(mm_id, page);
            retire.push((page.vpn(), v));
        }
        let page_range = VirtRange::pages(page, 1, PageSize::Size4K);
        self.reuse_bump_versions(mm_id, page_range);
        let sync_cost = self.numa_replica_update(core, mm_id, &[(page, old_pte)], &retire);
        // Flush: bump the generation and build a 1-page shootdown run; the
        // local part uses either INVLPG or the §4.1 access trick.
        let Some(mm) = self.mms.get_mut(&mm_id) else {
            self.record_error(SimError::NoSuchMm(mm_id));
            return self.segfault(core, ff);
        };
        let gen = mm.gen.bump();
        let info = FlushTlbInfo::ranged(
            mm_id,
            VirtRange::pages(page, 1, PageSize::Size4K),
            PageSize::Size4K,
            gen,
        );
        let mut run = ShootdownRun::new(info);
        run.retire = retire;
        if cow_flush_method(old_pte.flags, &self.cfg.opts) == CowFlushMethod::AccessTrick {
            run = run.with_cow_trick(page);
            self.stats.counters.bump("cow_access_trick");
        }
        ff.sd = Some(run);
        ff.stage = FaultStage::Shootdown;
        StepOut::Continue(costs.page_copy + costs.pte_update + sync_cost)
    }

    /// Split every hugepage leaf overlapping `range` back into 4KB PTEs
    /// (Linux's `__split_huge_pmd`) before a range operation mutates it.
    /// The same frames stay mapped with the same permissions, so no
    /// translation changes and no flush is owed *for the split itself* —
    /// but the zap/protect code below then works one 4KB entry at a time
    /// (one `put_page` per removed PTE), and the operation's ranged
    /// INVLPG loop is what evicts the now-stale 2MB TLB entry. Skipping
    /// that eviction is exactly the `buggy_fracture` canary.
    fn split_huge_leaves(&mut self, mm_id: MmId, range: VirtRange) -> u64 {
        let mut split = 0u64;
        let mut errs = Vec::new();
        if let Some(mm) = self.mms.get_mut(&mm_id) {
            let huge: Vec<VirtAddr> = mm
                .space
                .iter_range(range)
                .into_iter()
                .filter(|&(_, _, size)| size != PageSize::Size4K)
                .map(|(base, _, _)| base)
                .collect();
            for base in huge {
                match mm.space.split_huge_leaf(&mut self.mem, base) {
                    Ok(true) => split += 1,
                    Ok(false) => {}
                    Err(e) => errs.push(e),
                }
            }
        }
        for e in errs {
            self.record_error(e);
        }
        if split > 0 {
            self.stats.counters.add("thp_split", split);
        }
        split
    }

    /// Record a TLB fill with the oracle, covering every 4KB page the
    /// installed entry translates: a 2MB fill caches 512 translations at
    /// once, and each must be individually eligible for staleness checks
    /// when a later flush retires part of the range.
    fn oracle_filled(
        &mut self,
        core: CoreId,
        user_view: bool,
        mm_id: MmId,
        entry: &tlbdown_tlb::TlbEntry,
    ) {
        let pages = entry.size.bytes() / PageSize::Size4K.bytes();
        for i in 0..pages {
            self.oracle
                .tlb_filled(core, user_view, mm_id, entry.page_base.add(i * 4096));
        }
    }

    /// Demand-fault `va` into `mm` (no existing PTE). Returns the frame
    /// mapped, or `None` if no VMA covers the address.
    pub(crate) fn resolve_demand_fault(
        &mut self,
        core: CoreId,
        mm_id: MmId,
        va: VirtAddr,
        write: bool,
    ) -> Option<tlbdown_types::PhysAddr> {
        let page = va.align_down(PageSize::Size4K);
        let vma = self.mms.get(&mm_id)?.vma_at(va).cloned()?;
        // L7: a parked identical mapping short-circuits the whole fault —
        // no allocation, no flush — when the versioned-PTE check passes.
        if self.reuse_active() && matches!(vma.kind, VmaKind::Anon) {
            if let Some(pa) = self.reuse_try_hit(core, mm_id, &vma, page, write, false) {
                if write {
                    self.dirty_index
                        .entry(mm_id)
                        .or_default()
                        .insert(page.vpn());
                }
                self.numa_fault_filled(core, mm_id, page);
                self.stats.counters.bump("demand_fault");
                return Some(pa);
            }
        }
        // THP promotion (`MADV_HUGEPAGE`): on first touch of an empty,
        // 2MB-aligned window of an anonymous VMA, back the whole window
        // with one hugepage — Linux's fault-time THP allocation. Any
        // failure (window not fully inside the VMA, already partially
        // populated, no aligned contiguous frames) falls through to the
        // ordinary 4KB path.
        if vma.thp && matches!(vma.kind, VmaKind::Anon) {
            let huge = PageSize::Size2M.bytes();
            let win = VirtAddr::new(page.as_u64() & !(huge - 1));
            let inside = vma.range.start <= win && win.add(huge) <= vma.range.end;
            let empty = inside
                && self
                    .mms
                    .get(&mm_id)?
                    .space
                    .iter_range(VirtRange::pages(win, 512, PageSize::Size4K))
                    .is_empty();
            if empty {
                if let Ok(pa) = self
                    .mem
                    .alloc_contiguous_aligned(512, 512, FrameState::UserPage)
                {
                    let mut f = PteFlags::user_rw();
                    if vma.prot_exec {
                        f = f.without(PteFlags::NX);
                    }
                    let mapped = {
                        let mm = self.mms.get_mut(&mm_id)?;
                        // A prior zap may have emptied this window without
                        // freeing its page table; collapse it so the PD
                        // slot is free for the huge leaf.
                        mm.space.collapse_empty_pt(&mut self.mem, win);
                        mm.space.map(&mut self.mem, win, pa, PageSize::Size2M, f)
                    };
                    if let Err(e) = mapped {
                        // The window stopped being empty under us (stale
                        // iter_range snapshot): release the huge frame run
                        // and fall through to the 4KB path.
                        self.record_error(e);
                        for i in 0..512 {
                            self.mem.free(pa.add(i * 4096));
                        }
                    } else {
                        for i in 0..512 {
                            self.frame_refs.get_page(pa.add(i * 4096));
                        }
                        if write {
                            self.dirty_index
                                .entry(mm_id)
                                .or_default()
                                .insert(page.vpn());
                        }
                        self.numa_fault_filled(core, mm_id, page);
                        self.stats.counters.bump("thp_promote");
                        self.stats.counters.bump("demand_fault");
                        return Some(pa.add(page.as_u64() - win.as_u64()));
                    }
                }
            }
        }
        let (pa, flags) = match vma.kind {
            VmaKind::Anon => {
                let pa = self.mem.alloc(FrameState::UserPage).ok()?;
                self.frame_refs.get_page(pa);
                let mut f = PteFlags::user_rw();
                if vma.prot_exec {
                    f = f.without(PteFlags::NX);
                }
                (pa, f)
            }
            VmaKind::FileShared { file, page_offset } => {
                let fpage = page_offset + (page.as_u64() - vma.range.start.as_u64()) / 4096;
                let f = self.files.get_mut(&file)?;
                let pa = *f.pages.get(fpage as usize)?;
                if write {
                    f.dirty.insert(fpage);
                }
                self.frame_refs.get_page(pa);
                let mut flags = PteFlags::PRESENT | PteFlags::USER | PteFlags::NX;
                if vma.prot_write {
                    flags |= PteFlags::WRITABLE;
                }
                if write {
                    flags |= PteFlags::DIRTY;
                }
                (pa, flags)
            }
            VmaKind::FilePrivate { file, page_offset } => {
                let fpage = page_offset + (page.as_u64() - vma.range.start.as_u64()) / 4096;
                let f = self.files.get(&file)?;
                let pa = *f.pages.get(fpage as usize)?;
                self.frame_refs.get_page(pa);
                let mut flags = PteFlags::user_cow();
                if vma.prot_exec {
                    flags = flags.without(PteFlags::NX);
                }
                (pa, flags)
            }
        };
        let mm = self.mms.get_mut(&mm_id)?;
        mm.space
            .map(&mut self.mem, page, pa, PageSize::Size4K, flags)
            .ok()?;
        if write {
            self.dirty_index
                .entry(mm_id)
                .or_default()
                .insert(page.vpn());
        }
        self.numa_fault_filled(core, mm_id, page);
        self.stats.counters.bump("demand_fault");
        Some(pa)
    }

    fn segfault(&mut self, core: CoreId, ff: &mut FaultFrame) -> StepOut {
        self.stats.counters.bump("segfault");
        if let Some(idx) = self.cpus[core.index()].current {
            self.threads[idx].done = true;
        }
        ff.stage = FaultStage::Return;
        ff.label = "segfault";
        StepOut::Continue(Cycles::ZERO)
    }

    // --- NMI ---

    fn step_nmi(&mut self, core: CoreId, nf: &mut NmiFrame) -> StepOut {
        match nf.stage {
            NmiStage::Body => {
                nf.stage = NmiStage::Done;
                let Some(va) = nf.probe else {
                    return StepOut::Continue(Cycles::new(200));
                };
                let mm_id = self.current_mm(core);
                let ts = &self.cpus[core.index()].tlb_state;
                let flush_pending = self.cpus[core.index()].acked_unflushed > 0
                    || self.cpus[core.index()].in_batched_syscall;
                let okay = if self.cfg.buggy_nmi_check {
                    // Missing the §3.2 extension: only the mm identity check.
                    ts.loaded_mm == mm_id
                } else {
                    ts.nmi_uaccess_okay(mm_id, flush_pending)
                };
                if !okay {
                    self.stats.counters.bump("nmi_uaccess_denied");
                    return StepOut::Continue(Cycles::new(200));
                }
                self.stats.counters.bump("nmi_uaccess");
                // The probe reads user memory through the kernel mapping.
                let kpcid = self.cpus[core.index()].tlb_state.kernel_pcid;
                let costs = self.cfg.costs.clone();
                let res = {
                    let Some(mm) = self.mms.get_mut(&mm_id) else {
                        self.record_error(SimError::NoSuchMm(mm_id));
                        return StepOut::Continue(Cycles::new(200));
                    };
                    self.tlbs[core.index()].access(kpcid, va, false, false, &mut mm.space, &costs)
                };
                match &res {
                    Ok(acc) if acc.hit => self.stats.counters.bump("nmi_probe_hit"),
                    Ok(_) => self.stats.counters.bump("nmi_probe_miss"),
                    Err(_) => self.stats.counters.bump("nmi_probe_fault"),
                }
                if let Ok(acc) = res {
                    if self.cfg.oracle {
                        let page = va.align_down(PageSize::Size4K);
                        if acc.hit {
                            self.oracle
                                .check_hit(core, false, mm_id, page, "nmi uaccess");
                        } else {
                            self.oracle_filled(core, false, mm_id, &acc.entry);
                        }
                    }
                }
                StepOut::Continue(Cycles::new(400))
            }
            NmiStage::Done => StepOut::Done {
                cost: self.cfg.costs.irq_exit,
                retval: None,
            },
        }
    }

    // --- Kernel exit ---

    /// Execute deferred user-PCID flushes at a kernel→user transition
    /// (§3.4); returns the added cost.
    pub(crate) fn kernel_exit_user_flush(&mut self, core: CoreId) -> Cycles {
        if !self.cfg.safe_mode {
            return Cycles::ZERO;
        }
        let Some(pending) = self.cpus[core.index()].tlb_state.deferred_user.take() else {
            return Cycles::ZERO;
        };
        let user_pcid = self.cpus[core.index()].tlb_state.user_pcid;
        if pending.full {
            // Folded into the CR3 reload that returns to the user page
            // tables — architecturally free (§3.4 baseline behaviour).
            self.tlbs[core.index()].flush_pcid(user_pcid);
            self.stats.counters.bump("exit_full_user_flush");
            trace_emit!(
                self,
                core,
                None::<u64>,
                TraceEvent::FullFlush { user: true }
            );
            Cycles::ZERO
        } else {
            // The in-context INVLPG loop, plus the Spectre-v1 lfence.
            let mut cost = Cycles::ZERO;
            let mut n = 0;
            for va in pending.range.iter_pages(pending.stride) {
                self.tlbs[core.index()].invlpg(user_pcid, va);
                cost += self.cfg.costs.invlpg;
                n += 1;
            }
            cost += self.cfg.costs.lfence;
            self.stats.counters.add("in_context_flushes", n);
            trace_emit!(self, core, None::<u64>, TraceEvent::InContextFlush { n });
            cost
        }
    }
}

/// Human name of a syscall for statistics keys.
pub(crate) fn syscall_name(c: &Syscall) -> &'static str {
    match c {
        Syscall::MmapAnon { .. } => "mmap_anon",
        Syscall::MmapFile { .. } => "mmap_file",
        Syscall::Munmap { .. } => "munmap",
        Syscall::MadviseDontNeed { .. } => "madvise_dontneed",
        Syscall::Msync { .. } => "msync",
        Syscall::Fdatasync { .. } => "fdatasync",
        Syscall::Send { .. } => "send",
        Syscall::Mprotect { .. } => "mprotect",
    }
}

#[cfg(test)]
mod tests {
    //! Regression tests for the typed-error conversions of former panic
    //! sites: each broken-invariant path must record a [`SimError`] and
    //! degrade the affected call/fault, never bring the machine down.

    use tlbdown_mem::Pte;
    use tlbdown_types::{CoreId, Cycles, PageSize, PteFlags, VirtAddr};

    use super::{FaultFrame, FaultStage, StepOut, SyscallFrame, SyscallStage};
    use crate::config::KernelConfig;
    use crate::machine::Machine;
    use crate::prog::Syscall;

    fn machine() -> Machine {
        Machine::new(KernelConfig::test_machine(1))
    }

    fn syscall_frame(stage: SyscallStage) -> SyscallFrame {
        SyscallFrame {
            call: Syscall::MmapAnon { pages: 1 },
            stage,
            retval: 0,
            sd: None,
            batched_retires: Vec::new(),
            barrier: Default::default(),
            pending_frees: Vec::new(),
            started: Cycles::ZERO,
            batched: false,
            did_batch: false,
            batch: tlbdown_core::BatchState::new(),
        }
    }

    #[test]
    fn syscall_shootdown_stage_without_run_fails_call_not_machine() {
        let mut m = machine();
        let _mm = m.create_process().expect("boot: create process");
        let mut sf = syscall_frame(SyscallStage::Shootdown);
        let out = m.step_syscall(CoreId(0), &mut sf);
        assert!(matches!(out, StepOut::Continue(_)));
        assert_eq!(sf.retval, u64::MAX, "the call fails");
        assert_eq!(sf.stage, SyscallStage::Release, "held state still drops");
        assert_eq!(m.recorded_errors().len(), 1, "{:?}", m.recorded_errors());
    }

    #[test]
    fn fault_shootdown_stage_without_run_unwinds_through_return() {
        let mut m = machine();
        let _mm = m.create_process().expect("boot: create process");
        let mut ff = FaultFrame {
            va: VirtAddr::new(0x5000),
            write: false,
            is_fetch: false,
            stage: FaultStage::Shootdown,
            sd: None,
            pending_frees: Vec::new(),
            started: Cycles::ZERO,
            label: "fault",
        };
        let out = m.step_fault(CoreId(0), &mut ff);
        assert!(matches!(out, StepOut::Continue(_)));
        assert_eq!(
            ff.stage,
            FaultStage::Return,
            "unwinds so deferred frees still run"
        );
        assert_eq!(m.recorded_errors().len(), 1, "{:?}", m.recorded_errors());
    }

    #[test]
    fn cow_with_vanished_pte_segfaults_instead_of_panicking() {
        let mut m = machine();
        let mm = m.create_process().expect("boot: create process");
        // No PTE was ever mapped at this page: the CoW update_entry fails,
        // which before the typed-error sweep was an `expect("CoW PTE
        // exists")` panic.
        let page = VirtAddr::new(0x40_0000);
        let old = Pte::new(tlbdown_types::PhysAddr::new(0x1000), PteFlags::user_cow());
        let mut ff = FaultFrame {
            va: page,
            write: true,
            is_fetch: false,
            stage: FaultStage::Resolve,
            sd: None,
            pending_frees: Vec::new(),
            started: Cycles::ZERO,
            label: "fault",
        };
        let out = m.resolve_cow(CoreId(0), &mut ff, mm, page, old);
        assert!(matches!(out, StepOut::Continue(_)));
        assert_eq!(ff.label, "segfault");
        assert!(
            !m.recorded_errors().is_empty(),
            "the vanished PTE is a recorded error"
        );
    }

    #[test]
    fn writeback_update_entry_error_propagates_as_sim_error() {
        // `writeback_range` now threads `update_entry` failures out as
        // `Result` instead of panicking. Drive it with a dirty-index entry
        // whose PTE exists and is dirty — the success path — and confirm
        // the call still cleans exactly that page (the conversion must not
        // have changed behaviour).
        let mut m = machine();
        let mm = m.create_process().expect("boot: create process");
        let addr = m.setup_map_anon(mm, 1).expect("boot: map anon");
        assert!(m.resolve_demand_fault(CoreId(0), mm, addr, true).is_some());
        // The MMU's D-bit walk on the write access.
        let _ = m
            .mms
            .get_mut(&mm)
            .expect("mm exists")
            .space
            .mark_used(addr, true);
        let mut sf = syscall_frame(SyscallStage::Body);
        let range = tlbdown_types::VirtRange::pages(addr, 1, PageSize::Size4K);
        let cost = m
            .writeback_range(CoreId(0), &mut sf, mm, range)
            .expect("writeback succeeds");
        assert!(cost > Cycles::ZERO);
        let (pte, _) = m.mms[&mm].space.entry(addr).expect("still mapped");
        assert!(!pte.dirty() && !pte.writable());
    }
}

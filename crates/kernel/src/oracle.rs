//! The TLB-coherence safety oracle.
//!
//! The kernel's contract is: once a PTE-modifying operation *completes its
//! flush guarantee* (a synchronous shootdown finishes on the initiator, a
//! batching barrier runs, a deferred in-context flush executes before the
//! return to user), no user-mode access anywhere may translate through the
//! old entry. Hardware staleness *during* the window is legal — that is
//! why shootdowns exist at all.
//!
//! The oracle tracks, per `(mm, page)`, a modification **version** and the
//! highest version whose removal the kernel has **retired** (guaranteed).
//! Every TLB fill records the page version the entry was created under;
//! every user access through a cached entry checks
//! `fill_version >= retired_version`. A violation is precisely the hazard
//! class the paper warns aggressive batching creates (§2.3.2), and it is
//! what the LATR-style lazy mode in this repository trips.

use std::collections::HashMap;

use tlbdown_types::{CoreId, MmId, SimError, VirtAddr, VirtRange};

/// The safety oracle.
#[derive(Debug, Default)]
pub struct Oracle {
    /// Current modification version per (mm, vpn).
    versions: HashMap<(MmId, u64), u64>,
    /// Highest version whose flush has been guaranteed, per (mm, vpn).
    retired: HashMap<(MmId, u64), u64>,
    /// Fill-time version of live TLB entries, per (core, pcid-view, mm,
    /// vpn). The view bit distinguishes kernel- and user-PCID entries so
    /// PTI double-flush bugs are caught independently per view.
    fills: HashMap<(CoreId, bool, MmId, u64), u64>,
    /// Violations found.
    violations: Vec<SimError>,
}

impl Oracle {
    /// A fresh oracle.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Record that the PTE mapping `(mm, page)` changed (unmap, protect,
    /// CoW swap). Returns the new version, which the caller threads into
    /// [`Oracle::retire_range`] when the covering flush retires.
    pub fn pte_modified(&mut self, mm: MmId, page: VirtAddr) -> u64 {
        let v = self.versions.entry((mm, page.vpn())).or_insert(0);
        *v += 1;
        *v
    }

    /// Record every page of `range` as modified; returns the
    /// `(vpn, version)` pairs to hand to [`Oracle::retire_exact`] when the
    /// covering flush completes. Retiring at flush time using the *then*
    /// current versions would overcommit: another core may have modified a
    /// page again (with its own flush still in flight) between this
    /// operation's PTE update and its flush completion.
    pub fn range_modified(&mut self, mm: MmId, range: VirtRange) -> Vec<(u64, u64)> {
        let mut pairs = Vec::new();
        let mut va = range.start;
        while va < range.end {
            pairs.push((va.vpn(), self.pte_modified(mm, va)));
            va = va.add(4096);
        }
        pairs
    }

    /// The kernel has completed the flush guarantee for exactly the given
    /// `(vpn, version)` pairs.
    pub fn retire_exact(&mut self, mm: MmId, pairs: &[(u64, u64)]) {
        for &(vpn, ver) in pairs {
            let r = self.retired.entry((mm, vpn)).or_insert(0);
            *r = (*r).max(ver);
        }
    }

    /// The kernel has completed the flush guarantee for `range` up to the
    /// current version of each page.
    pub fn retire_range(&mut self, mm: MmId, range: VirtRange) {
        let mut va = range.start;
        while va < range.end {
            let key = (mm, va.vpn());
            if let Some(&v) = self.versions.get(&key) {
                let r = self.retired.entry(key).or_insert(0);
                *r = (*r).max(v);
            }
            va = va.add(4096);
        }
    }

    /// The kernel has completed a full-mm flush guarantee.
    pub fn retire_all(&mut self, mm: MmId) {
        let keys: Vec<(MmId, u64)> = self
            .versions
            .keys()
            .filter(|(m, _)| *m == mm)
            .copied()
            .collect();
        for key in keys {
            let v = self.versions[&key];
            let r = self.retired.entry(key).or_insert(0);
            *r = (*r).max(v);
        }
    }

    /// Record a TLB fill on `core` (under the kernel- or user-PCID view)
    /// for `(mm, page)` at the current version.
    pub fn tlb_filled(&mut self, core: CoreId, user_view: bool, mm: MmId, page: VirtAddr) {
        let v = self.versions.get(&(mm, page.vpn())).copied().unwrap_or(0);
        self.fills.insert((core, user_view, mm, page.vpn()), v);
    }

    /// Record a TLB fill at an *explicit* version rather than the current
    /// one. Used when the modelled hardware translates through state that
    /// lags the real page tables — a stale numaPTE socket replica fills at
    /// the version the replica last saw, so a later retire of the real
    /// update correctly flags any access that survives it.
    pub fn tlb_filled_at(
        &mut self,
        core: CoreId,
        user_view: bool,
        mm: MmId,
        page: VirtAddr,
        version: u64,
    ) {
        self.fills
            .insert((core, user_view, mm, page.vpn()), version);
    }

    /// Current modification version of `(mm, page)` (0 if never modified).
    pub fn current_version(&self, mm: MmId, page: VirtAddr) -> u64 {
        self.versions.get(&(mm, page.vpn())).copied().unwrap_or(0)
    }

    /// The reuse-skip window restored `(mm, page)` to a PTE byte-identical
    /// to its pre-`version` state, with no intervening modification (the
    /// kernel's versioned-PTE check proved `version` is still the page's
    /// current version). Every live entry for the page — any core, either
    /// view — therefore translates correctly again: re-stamp older fills
    /// to `version` and retire it. This is the only sound way to retire a
    /// version whose flush was elided; retiring without the re-stamp (what
    /// `buggy_reuse_skip` effectively does at park time) flags the very
    /// next hit through a surviving entry.
    pub fn reuse_restored(&mut self, mm: MmId, page: VirtAddr, version: u64) {
        for ((_, _, m, vp), fill) in self.fills.iter_mut() {
            if *m == mm && *vp == page.vpn() && *fill < version {
                *fill = version;
            }
        }
        let r = self.retired.entry((mm, page.vpn())).or_insert(0);
        *r = (*r).max(version);
    }

    /// Check a user-mode (or NMI uaccess) access on `core` that *hit* the
    /// TLB. Records a violation if the entry predates a retired flush.
    pub fn check_hit(
        &mut self,
        core: CoreId,
        user_view: bool,
        mm: MmId,
        page: VirtAddr,
        detail: &str,
    ) {
        let key = (mm, page.vpn());
        let retired = self.retired.get(&key).copied().unwrap_or(0);
        if retired == 0 {
            return;
        }
        let fill = self
            .fills
            .get(&(core, user_view, mm, page.vpn()))
            .copied()
            .unwrap_or(0);
        if fill < retired {
            self.violations.push(SimError::StaleTlbAccess {
                core,
                mm,
                addr: page,
                detail: format!(
                    "entry filled at version {fill} used after version {retired} retired: {detail}"
                ),
            });
        }
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[SimError] {
        &self.violations
    }

    /// Record an externally detected violation (e.g. machine check).
    pub fn record(&mut self, e: SimError) {
        self.violations.push(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlbdown_types::PageSize;

    const MM: MmId = MmId(1);
    const CORE: CoreId = CoreId(0);

    fn page(n: u64) -> VirtAddr {
        VirtAddr::new(n * 4096)
    }

    #[test]
    fn fresh_entries_are_fine() {
        let mut o = Oracle::new();
        o.tlb_filled(CORE, false, MM, page(1));
        o.check_hit(CORE, false, MM, page(1), "test");
        assert!(o.violations().is_empty());
    }

    #[test]
    fn stale_after_retire_is_a_violation() {
        let mut o = Oracle::new();
        o.tlb_filled(CORE, false, MM, page(1)); // filled at version 0
        o.pte_modified(MM, page(1)); // version 1
                                     // Window: access before retire is legal.
        o.check_hit(CORE, false, MM, page(1), "during window");
        assert!(o.violations().is_empty());
        o.retire_range(MM, VirtRange::pages(page(1), 1, PageSize::Size4K));
        o.check_hit(CORE, false, MM, page(1), "after retire");
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn refill_after_modify_is_fine() {
        let mut o = Oracle::new();
        o.pte_modified(MM, page(1));
        o.retire_range(MM, VirtRange::pages(page(1), 1, PageSize::Size4K));
        // The flush removed the entry; the next access refills at v1.
        o.tlb_filled(CORE, false, MM, page(1));
        o.check_hit(CORE, false, MM, page(1), "refilled");
        assert!(o.violations().is_empty());
    }

    #[test]
    fn retire_all_covers_every_page() {
        let mut o = Oracle::new();
        o.tlb_filled(CORE, false, MM, page(1));
        o.tlb_filled(CORE, false, MM, page(9));
        o.range_modified(MM, VirtRange::pages(page(1), 1, PageSize::Size4K));
        o.pte_modified(MM, page(9));
        o.retire_all(MM);
        o.check_hit(CORE, false, MM, page(9), "full flush retired");
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn retire_range_excludes_boundary_pages() {
        // Retiring [1, 3) must not retire page 0 (before the range) or
        // page 3 (== range.end, exclusive): stale entries on the boundary
        // pages stay legal until their own flush retires.
        let mut o = Oracle::new();
        for n in [0, 1, 2, 3] {
            o.tlb_filled(CORE, false, MM, page(n)); // all filled at v0
            o.pte_modified(MM, page(n)); // all bumped to v1
        }
        o.retire_range(MM, VirtRange::pages(page(1), 2, PageSize::Size4K));
        o.check_hit(CORE, false, MM, page(0), "before range");
        o.check_hit(CORE, false, MM, page(3), "at exclusive end");
        assert!(
            o.violations().is_empty(),
            "boundary pages wrongly retired: {:?}",
            o.violations()
        );
        o.check_hit(CORE, false, MM, page(1), "inside range");
        o.check_hit(CORE, false, MM, page(2), "inside range");
        assert_eq!(o.violations().len(), 2);
    }

    #[test]
    fn kernel_and_user_views_are_independent() {
        // PTI: the same page lives under two PCIDs. A refill in the user
        // view must not launder a stale kernel-view entry (this is exactly
        // the double-flush bug class PTI introduces).
        let mut o = Oracle::new();
        o.tlb_filled(CORE, true, MM, page(1)); // user view, v0
        o.tlb_filled(CORE, false, MM, page(1)); // kernel view, v0
        o.pte_modified(MM, page(1));
        o.retire_range(MM, VirtRange::pages(page(1), 1, PageSize::Size4K));
        // Only the user view refills after the flush.
        o.tlb_filled(CORE, true, MM, page(1));
        o.check_hit(CORE, true, MM, page(1), "user view refilled");
        assert!(o.violations().is_empty());
        o.check_hit(CORE, false, MM, page(1), "kernel view still stale");
        assert_eq!(
            o.violations().len(),
            1,
            "stale kernel-view entry must be caught independently"
        );
    }

    #[test]
    fn broken_lazy_mode_skipping_one_page_is_caught() {
        // Regression for the §2.3.2 hazard: a lazy mode that claims the
        // flush guarantee for a whole range but never actually invalidates
        // one page. The refilled pages are clean; the first hit through
        // the skipped page's surviving entry is flagged.
        let mut o = Oracle::new();
        let range = VirtRange::pages(page(4), 4, PageSize::Size4K);
        for n in 4..8 {
            o.tlb_filled(CORE, false, MM, page(n));
        }
        let pairs = o.range_modified(MM, range);
        o.retire_exact(MM, &pairs); // kernel claims: all four are flushed
        for n in [4, 5, 7] {
            o.tlb_filled(CORE, false, MM, page(n)); // really flushed: refill
            o.check_hit(CORE, false, MM, page(n), "refilled after flush");
        }
        assert!(o.violations().is_empty());
        // Page 6 was silently skipped — its v0 entry survived the "flush".
        o.check_hit(CORE, false, MM, page(6), "lazy mode skipped this page");
        assert_eq!(
            o.violations().len(),
            1,
            "the skipped page's stale entry must trip the oracle"
        );
    }

    #[test]
    fn reuse_restore_launders_identical_translations() {
        // Reuse-skip: zap parks the page (no retire — elision is legal
        // while the pairs stay un-retired), then the re-fault restores the
        // identical PTE and declares the guarantee via reuse_restored.
        let mut o = Oracle::new();
        o.tlb_filled(CORE, false, MM, page(1)); // remote entry at v0
        let v = o.pte_modified(MM, page(1)); // parked at v1, flush elided
        o.check_hit(CORE, false, MM, page(1), "during elided window");
        assert!(o.violations().is_empty(), "un-retired window is legal");
        o.reuse_restored(MM, page(1), v);
        o.check_hit(CORE, false, MM, page(1), "after identical restore");
        assert!(
            o.violations().is_empty(),
            "an entry translating a restored-identical PTE is coherent"
        );
    }

    #[test]
    fn retire_without_restore_flags_survivors() {
        // The buggy_reuse_skip shape: claim the guarantee at park time
        // (plain retire_exact) without flushing or re-stamping — the
        // surviving entry's next hit must be a violation.
        let mut o = Oracle::new();
        o.tlb_filled(CORE, false, MM, page(1));
        let v = o.pte_modified(MM, page(1));
        o.retire_exact(MM, &[(page(1).vpn(), v)]);
        o.check_hit(CORE, false, MM, page(1), "survivor after bogus retire");
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn stale_replica_fill_records_old_version() {
        // numaPTE: a walk through a stale socket replica fills at the old
        // version; once the real update's flush retires, a hit through
        // that entry is exactly the stale-read the replica sync prevents.
        let mut o = Oracle::new();
        let v = o.pte_modified(MM, page(2));
        o.tlb_filled_at(CORE, false, MM, page(2), v - 1);
        o.check_hit(CORE, false, MM, page(2), "before retire");
        assert!(o.violations().is_empty());
        o.retire_exact(MM, &[(page(2).vpn(), v)]);
        o.check_hit(CORE, false, MM, page(2), "stale replica fill after retire");
        assert_eq!(o.violations().len(), 1);
    }

    #[test]
    fn current_version_tracks_modifications() {
        let mut o = Oracle::new();
        assert_eq!(o.current_version(MM, page(3)), 0);
        o.pte_modified(MM, page(3));
        o.pte_modified(MM, page(3));
        assert_eq!(o.current_version(MM, page(3)), 2);
    }

    #[test]
    fn per_core_independence() {
        let mut o = Oracle::new();
        o.tlb_filled(CoreId(0), false, MM, page(1));
        o.pte_modified(MM, page(1));
        o.retire_range(MM, VirtRange::pages(page(1), 1, PageSize::Size4K));
        // Core 1 refilled after the change; core 0 kept the stale entry.
        o.tlb_filled(CoreId(1), false, MM, page(1));
        o.check_hit(CoreId(1), false, MM, page(1), "fresh on core 1");
        assert!(o.violations().is_empty());
        o.check_hit(CoreId(0), false, MM, page(1), "stale on core 0");
        assert_eq!(o.violations().len(), 1);
    }
}

//! Kernel-wide configuration.

use tlbdown_core::OptConfig;
use tlbdown_tlb::TlbGeometry;
use tlbdown_topo::TopologySpec;
use tlbdown_types::{CostModel, Topology};

use crate::chaos::ChaosConfig;

/// Configuration of one simulated kernel boot.
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Machine CPU layout.
    pub topo: Topology,
    /// Micro-operation costs.
    pub costs: CostModel,
    /// Which of the paper's optimizations are active.
    pub opts: OptConfig,
    /// "Safe mode": Meltdown/Spectre mitigations on — PTI dual address
    /// spaces, doubled TLB flushes, trampoline entry costs (§5). When
    /// false ("unsafe mode"), kernel pages are global and each flush is
    /// performed once.
    pub safe_mode: bool,
    /// LATR-style lazy shootdowns: PTE-modifying syscalls return without
    /// waiting for (or even sending) IPIs; flushes are applied on each
    /// core asynchronously after `lazy_latr_delay_cycles`. Reproduces the
    /// related-work behaviour of §2.3.2 so its hazards can be demonstrated.
    pub lazy_latr: bool,
    /// Delay before a LATR-deferred flush executes on a remote core.
    pub lazy_latr_delay_cycles: u64,
    /// Emulate the CPU speculatively caching the faulting PTE between
    /// page-fault delivery and the handler's PTE update (§4.1 hazard).
    pub speculative_fill_on_fault: bool,
    /// Whether the safety oracle records violations (cheap; leave on).
    pub oracle: bool,
    /// Failure injection: omit the §3.2 `nmi_uaccess_okay` pending-flush
    /// extension, so NMI probes during the early-ack window read through
    /// stale entries (used by tests to demonstrate the hazard).
    pub buggy_nmi_check: bool,
    /// Failure injection for the escalation ladder: a quarantined
    /// responder skips its unconditional-full-flush override *and* the
    /// `acked_unflushed` bookkeeping on early ack (rationalised as "the
    /// forced-flush path accounts for quarantined cores"), leaving the
    /// §3.2 window unprotected. The schedule explorer must catch this
    /// variant (`check::scenario::quarantine_probe`) while the real
    /// quarantine path explores clean.
    pub buggy_quarantine: bool,
    /// Maximum seeded jitter (cycles) added to IPI delivery and interrupt
    /// dispatch, emulating the microarchitectural noise behind the
    /// paper's error bars. Zero (default) keeps the machine fully
    /// deterministic.
    pub noise_cycles: u64,
    /// Seed for the machine's internal jitter stream.
    pub seed: u64,
    /// Which boot of this (simulated) chassis this is. Zero for a fresh
    /// machine; [`crate::Machine::cold_reboot`] bumps it so the rebooted
    /// kernel's seeded streams (noise, fault plan, escalation) diverge
    /// from the pre-crash boot the way a real reboot's would, while
    /// staying a pure function of `(seed, boot_epoch)`. Epoch 0 leaves
    /// every derived seed exactly as before this field existed.
    pub boot_epoch: u64,
    /// Chaos layer: fault injection and the csd-lock watchdog. Inert
    /// faults and an armed (but never-firing) watchdog by default.
    pub chaos: ChaosConfig,
    /// Bypass the engine's timing-wheel front-end and run every event
    /// through the pure binary heap — the pre-overhaul dispatch
    /// structure. The two configurations are byte-identical in every
    /// simulated outcome (the determinism gate proves it); this flag
    /// exists for those proofs and for before/after throughput
    /// comparisons, not for production runs.
    pub engine_heap_only: bool,
    /// Interconnect model routing cross-core cacheline transfers and IPI
    /// wire delivery. [`TopologySpec::Flat`] (default) is the pinned
    /// distance-constant reference — byte-identical to the pre-topology
    /// cost model. Ring and mesh route every transfer hop-by-hop through
    /// per-link costs with a deterministic M/D/1-style congestion model
    /// whose link state is folded into the machine digest.
    pub interconnect: TopologySpec,
    /// Per-core TLB organisation. [`TlbGeometry::legacy`] (default) is the
    /// historical unified FIFO pool; [`TlbGeometry::skylake_sp`] is the
    /// set-associative, page-size-aware hierarchy from CPUID leaf 0x18.
    pub tlb_geometry: TlbGeometry,
    /// Failure injection for the THP fracture path: responders' selective
    /// flushes remove only the 4K-sized entry for each address, as if the
    /// flush loop walked the range at 4K stride assuming the huge-page
    /// split already purged huge-grained entries. Leaves a stale 2M entry
    /// cached after a ranged shootdown that splinters a huge page — the
    /// checker's `fracture_probe` canary must catch this variant while the
    /// real split path explores clean.
    pub buggy_fracture: bool,
    /// Run the engine on the *partitioned* front-end with one sub-heap
    /// per socket (events routed by the core they execute on). Dispatch
    /// order — and therefore every digest, trace and metric — is
    /// byte-identical to the other two front-ends; the mode exists for
    /// partition-safe machine stepping and the engine-determinism gate
    /// that pins it. Mutually exclusive with `engine_heap_only`
    /// (heap-only wins if both are set). Off by default.
    pub engine_partitioned: bool,
    /// Failure injection for the L7 reuse-skip window: parking a zapped
    /// page records the flush guarantee *immediately*, skipping the
    /// versioned-PTE deferral protocol (the real path keeps the parked
    /// `(vpn, version)` pairs un-retired until either a reuse-time version
    /// check proves the restored PTE identical or a debt flush actually
    /// runs). Stale remote entries then survive a "guaranteed" flush —
    /// the checker's `reuse_probe` canary must catch this variant while
    /// the real reuse-skip path explores clean.
    pub buggy_reuse_skip: bool,
    /// Failure injection for the L8 numaPTE replication: PTE updates
    /// refresh only the updating core's socket replica instead of running
    /// the deterministic replica-sync to every remote socket. Remote
    /// page walks then translate through the stale replica PTE at the old
    /// version — the checker's `numapte_probe` canary must catch this
    /// variant while the real numaPTE path explores clean.
    pub buggy_numapte: bool,
    /// Capacity of the per-mm L7 reuse-skip window. Defaults to
    /// [`crate::mm::REUSE_WINDOW_CAP`]; scenarios shrink it so small
    /// workloads overflow the window and the elision levels still pay
    /// real debt-flush shootdowns (the signal that exploration, tracing
    /// and chaos gates measure).
    pub reuse_window_cap: usize,
}

impl KernelConfig {
    /// A config for the paper's machine in safe mode with no optimizations.
    pub fn paper_baseline() -> Self {
        KernelConfig {
            topo: Topology::paper_machine(),
            costs: CostModel::default(),
            opts: OptConfig::baseline(),
            safe_mode: true,
            lazy_latr: false,
            lazy_latr_delay_cycles: 100_000,
            speculative_fill_on_fault: true,
            oracle: true,
            buggy_nmi_check: false,
            buggy_quarantine: false,
            noise_cycles: 0,
            seed: 0x71bd,
            boot_epoch: 0,
            chaos: ChaosConfig::default(),
            interconnect: TopologySpec::Flat,
            tlb_geometry: TlbGeometry::legacy(),
            buggy_fracture: false,
            engine_heap_only: false,
            engine_partitioned: false,
            buggy_reuse_skip: false,
            buggy_numapte: false,
            reuse_window_cap: crate::mm::REUSE_WINDOW_CAP,
        }
    }

    /// A small single-socket machine for tests.
    pub fn test_machine(cores: u32) -> Self {
        KernelConfig {
            topo: Topology::small(cores),
            ..Self::paper_baseline()
        }
    }

    /// Builder-style: set the optimization config.
    pub fn with_opts(mut self, opts: OptConfig) -> Self {
        self.opts = opts;
        self
    }

    /// Builder-style: set safe mode.
    pub fn with_safe_mode(mut self, safe: bool) -> Self {
        self.safe_mode = safe;
        self
    }

    /// Builder-style: enable the LATR-style lazy mode.
    pub fn with_lazy_latr(mut self, lazy: bool) -> Self {
        self.lazy_latr = lazy;
        self
    }

    /// Builder-style: set the chaos configuration.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }

    /// Builder-style: route transfers and IPIs through an interconnect
    /// topology (see [`KernelConfig::interconnect`]).
    pub fn with_topology(mut self, spec: TopologySpec) -> Self {
        self.interconnect = spec;
        self
    }

    /// Builder-style: set the per-core TLB geometry.
    pub fn with_tlb_geometry(mut self, geometry: TlbGeometry) -> Self {
        self.tlb_geometry = geometry;
        self
    }

    /// Builder-style: inject the split-blind flush bug (see
    /// [`KernelConfig::buggy_fracture`]).
    pub fn with_buggy_fracture(mut self, buggy: bool) -> Self {
        self.buggy_fracture = buggy;
        self
    }

    /// Builder-style: run the event engine on the pure heap (reference
    /// configuration for determinism and throughput comparisons).
    pub fn with_heap_only_engine(mut self, heap_only: bool) -> Self {
        self.engine_heap_only = heap_only;
        self
    }

    /// Builder-style: run the event engine on per-socket partition
    /// sub-heaps (byte-identical dispatch; see
    /// [`KernelConfig::engine_partitioned`]).
    pub fn with_partitioned_engine(mut self, partitioned: bool) -> Self {
        self.engine_partitioned = partitioned;
        self
    }

    /// Builder-style: inject the retire-at-park reuse-skip bug (see
    /// [`KernelConfig::buggy_reuse_skip`]).
    pub fn with_buggy_reuse_skip(mut self, buggy: bool) -> Self {
        self.buggy_reuse_skip = buggy;
        self
    }

    /// Builder-style: inject the local-only replica-update numaPTE bug
    /// (see [`KernelConfig::buggy_numapte`]).
    pub fn with_buggy_numapte(mut self, buggy: bool) -> Self {
        self.buggy_numapte = buggy;
        self
    }

    /// Builder-style: set the L7 reuse-window capacity (see
    /// [`KernelConfig::reuse_window_cap`]).
    pub fn with_reuse_window_cap(mut self, cap: usize) -> Self {
        self.reuse_window_cap = cap;
        self
    }

    /// Builder-style: set the boot epoch (see [`Self::boot_epoch`]).
    pub fn with_boot_epoch(mut self, epoch: u64) -> Self {
        self.boot_epoch = epoch;
        self
    }

    /// Seed for a derived stream, mixed with the boot epoch. Epoch 0 is
    /// the identity so pre-existing single-boot digests are unchanged.
    pub fn epoch_seed(&self, base: u64) -> u64 {
        base ^ self.boot_epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let c = KernelConfig::test_machine(4)
            .with_opts(OptConfig::all())
            .with_safe_mode(false)
            .with_lazy_latr(true);
        assert_eq!(c.topo.num_cores(), 4);
        assert!(c.lazy_latr);
        assert!(!c.safe_mode);
        assert_eq!(c.opts, OptConfig::all());
    }
}

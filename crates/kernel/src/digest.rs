//! A canonical digest of the machine's protocol-relevant state.
//!
//! The schedule explorer (the `check` crate) prunes its DFS when it
//! reaches a state it has already expanded. "Same state" is judged by
//! [`Machine::state_digest`]: an FNV-1a hash over a canonical rendering
//! of everything the shootdown protocols read or write — per-core
//! `cpu_tlbstate`, the TLB contents, call-single queues, in-flight
//! shootdown records, per-mm generation counters, the frame stacks, and
//! the pending event queue. Components backed by hash maps are sorted
//! into a canonical order first, so the digest is independent of
//! iteration order and identical across runs within one build.
//!
//! The digest is *partial* by design (it skips page-table contents and
//! program-internal state, which are functions of the completed
//! operations already reflected in the hashed state for the small,
//! deterministic scenarios the checker runs): equal digests are treated
//! as equal futures for pruning. It is exact for what replay verification
//! needs — two runs of the same schedule on the same scenario must agree
//! on every hashed component, so a digest mismatch is proof of
//! nondeterminism.

use std::fmt::Write as _;

use crate::machine::Machine;

/// 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher over the canonical state rendering.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= u64::from(*b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

impl std::fmt::Write for Fnv {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.write(s.as_bytes());
        Ok(())
    }
}

impl Machine {
    /// Hash the protocol-relevant machine state into one `u64`. See the
    /// module docs for coverage and caveats.
    pub fn state_digest(&self) -> u64 {
        let mut h = Fnv::new();
        let _ = write!(h, "t={};", self.engine.now().as_u64());
        for (i, cpu) in self.cpus.iter().enumerate() {
            let _ = write!(
                h,
                "cpu{i}:ts={:?};csq={:?};au={};bs={};tok={};",
                cpu.tlb_state,
                cpu.csq,
                cpu.acked_unflushed,
                cpu.in_batched_syscall,
                cpu.resume_token,
            );
            let _ = write!(h, "frames={:?};", cpu.frames);
            let mut gens: Vec<_> = cpu.pcid_gens.iter().collect();
            gens.sort_unstable_by_key(|(mm, _)| **mm);
            let _ = write!(h, "pcid_gens={gens:?};");
            // Escalation-ladder state steers future flush decisions
            // (quarantine override, storm widening), so it is part of
            // the protocol state.
            let _ = write!(
                h,
                "esc=({},{},{},{},{});",
                self.esc.streak[i],
                self.esc.quarantined[i],
                self.esc.probation[i],
                self.esc.ewma_gap[i],
                self.esc.last_arrival[i],
            );
        }
        let _ = write!(h, "esc_rng={:?};", self.esc.jitter_rng);
        for (i, tlb) in self.tlbs.iter().enumerate() {
            let mut entries: Vec<String> = tlb.iter_entries().map(|e| format!("{e:?}")).collect();
            entries.sort_unstable();
            let _ = write!(h, "tlb{i}={entries:?};frac={};", tlb.fracture_flag());
        }
        let mut sds: Vec<_> = self.shootdowns.iter().collect();
        sds.sort_unstable_by_key(|(id, _)| **id);
        for (id, sd) in sds {
            let _ = write!(h, "sd{:?}={sd:?};", id);
        }
        let mut mms: Vec<_> = self.mms.iter().collect();
        mms.sort_unstable_by_key(|(id, _)| **id);
        for (id, mm) in mms {
            let _ = write!(
                h,
                "mm{:?}:gen={};mask={:?};vmas={:?};cursor={};",
                id,
                mm.gen.current(),
                mm.cpumask,
                mm.vmas.keys().collect::<Vec<_>>(),
                mm.mmap_cursor,
            );
            // L7/L8 state steers future flush decisions only when the
            // level is on; gating the fold keeps every digest produced
            // under the paper's six levels byte-identical to before.
            if self.cfg.opts.reuse_skip {
                for (vpn, e) in mm.reuse.iter() {
                    let _ = write!(h, "ru{vpn}={:?}v{}r{:?};", e.pte, e.version, e.retire);
                }
                let order: Vec<_> = mm.reuse.fifo_order().collect();
                let _ = write!(h, "ruo={order:?};pv={:?};", mm.pte_versions);
            }
            if self.cfg.opts.numa_pte {
                for (socket, stale) in &mm.numa_stale {
                    for (vpn, sp) in stale {
                        let _ = write!(h, "ns{socket}:{vpn}={:?}v{};", sp.pte, sp.version);
                    }
                }
            }
        }
        for (at, seq, ev) in self.engine.pending() {
            let _ = write!(h, "ev@{}#{seq}={ev:?};", at.as_u64());
        }
        // Interconnect link occupancy steers future transfer costs, so it
        // is protocol state under routed topologies. The flat reference
        // has no link state and contributes nothing, keeping every
        // pre-topology digest byte-identical.
        if !self.dir.interconnect().is_flat() {
            for (a, b, q) in self.dir.interconnect().digest_items() {
                let _ = write!(h, "icd{a}-{b}={q};");
            }
            for (a, b, q) in self.fabric.interconnect().digest_items() {
                let _ = write!(h, "icf{a}-{b}={q};");
            }
        }
        let _ = write!(
            h,
            "viol={};err={};",
            self.violations().len(),
            self.recorded_errors().len()
        );
        h.0
    }
}

#[cfg(test)]
mod tests {
    use tlbdown_sim::FifoScheduler;
    use tlbdown_types::CoreId;

    use crate::config::KernelConfig;
    use crate::machine::Machine;
    use crate::prog::MadviseLoopProg;

    fn run_one() -> Vec<u64> {
        let mut m = Machine::new(KernelConfig::test_machine(2));
        let mm = m.create_process().expect("boot: create process");
        m.spawn(mm, CoreId(0), Box::new(MadviseLoopProg::new(2, 1)));
        m.spawn(mm, CoreId(1), Box::new(MadviseLoopProg::new(2, 1)));
        let mut sched = FifoScheduler;
        let mut digests = Vec::new();
        while m.step_with(&mut sched) {
            digests.push(m.state_digest());
        }
        digests
    }

    #[test]
    fn digest_is_reproducible_across_identical_runs() {
        // Two machines stepped identically must agree at every step —
        // catches hash-map iteration order leaking into the digest.
        assert_eq!(run_one(), run_one());
    }

    #[test]
    fn digest_distinguishes_progress() {
        let d = run_one();
        assert!(d.len() > 10);
        // Not every step changes protocol state, but many must.
        let distinct: std::collections::HashSet<_> = d.iter().collect();
        assert!(distinct.len() > d.len() / 2);
    }
}

//! Behavioural tests for the syscall surface: msync, mprotect, send,
//! fdatasync, munmap, and scheduling across address spaces.

use tlbdown_core::OptConfig;
use tlbdown_kernel::prog::{Prog, ProgAction, ProgCtx, ScriptProg};
use tlbdown_kernel::{KernelConfig, Machine, Syscall};
use tlbdown_types::{CoreId, Cycles, PteFlags, VirtAddr};

fn boot(cores: u32) -> Machine {
    Machine::new(KernelConfig::test_machine(cores))
}

/// Drive a single script to completion on core 0 of `m`.
fn run_script(m: &mut Machine, mm: tlbdown_types::MmId, actions: Vec<ProgAction>) {
    m.spawn(mm, CoreId(0), Box::new(ScriptProg::new(actions)));
    m.run();
}

#[test]
fn msync_cleans_and_write_protects_dirty_pages() {
    let mut m = boot(1);
    let mm = m.create_process().expect("boot: create process");
    let f = m.create_file(4).expect("boot: create file");
    let addr = m.setup_map_file(mm, f, true).expect("boot: map file");
    run_script(
        &mut m,
        mm,
        vec![
            ProgAction::Access {
                va: addr,
                write: true,
            },
            ProgAction::Access {
                va: addr.add(4096),
                write: true,
            },
            ProgAction::Access {
                va: addr.add(2 * 4096),
                write: false,
            }, // read: stays clean
            ProgAction::Syscall(Syscall::Msync { addr, pages: 4 }),
        ],
    );
    assert_eq!(
        m.stats.counters.get("writeback_pages"),
        2,
        "only dirty pages written back"
    );
    // The written pages are now clean and write-protected.
    for i in [0u64, 1] {
        let (pte, _) = m.mms[&mm].space.entry(addr.add(i * 4096)).unwrap();
        assert!(!pte.writable());
        assert!(!pte.dirty());
        assert!(pte.flags.contains(PteFlags::SOFT_CLEAN));
    }
    // The read page kept its permissions.
    let (pte, _) = m.mms[&mm].space.entry(addr.add(2 * 4096)).unwrap();
    assert!(pte.writable());
    assert!(
        m.files[&f].dirty.is_empty(),
        "page cache is clean after writeback"
    );
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

#[test]
fn write_after_msync_redirties_without_flush() {
    let mut m = boot(1);
    let mm = m.create_process().expect("boot: create process");
    let f = m.create_file(1).expect("boot: create file");
    let addr = m.setup_map_file(mm, f, true).expect("boot: map file");
    run_script(
        &mut m,
        mm,
        vec![
            ProgAction::Access {
                va: addr,
                write: true,
            },
            ProgAction::Syscall(Syscall::Msync { addr, pages: 1 }),
            ProgAction::Access {
                va: addr,
                write: true,
            }, // re-dirty fault
        ],
    );
    assert_eq!(m.stats.counters.get("re_dirty"), 1);
    let (pte, _) = m.mms[&mm].space.entry(addr).unwrap();
    assert!(pte.writable() && pte.dirty());
    assert!(m.files[&f].dirty.contains(&0), "file page dirty again");
    // Re-permitting needs no shootdown: only the msync flushed.
    assert_eq!(m.stats.counters.get("shootdown"), 1);
    assert!(m.violations().is_empty());
}

#[test]
fn mprotect_readonly_then_write_segfaults() {
    let mut m = boot(1);
    let mm = m.create_process().expect("boot: create process");
    let addr = m.setup_map_anon(mm, 2).expect("boot: map anon");
    run_script(
        &mut m,
        mm,
        vec![
            ProgAction::Access {
                va: addr,
                write: true,
            },
            ProgAction::Syscall(Syscall::Mprotect {
                addr,
                pages: 2,
                write: false,
            }),
            ProgAction::Access {
                va: addr,
                write: true,
            }, // now forbidden
        ],
    );
    assert_eq!(m.stats.counters.get("mprotect"), 1);
    assert_eq!(m.stats.counters.get("segfault"), 1);
    // mprotect to read-only required a flush.
    assert!(m.stats.counters.get("shootdown") >= 1);
}

#[test]
fn mprotect_to_writable_needs_no_flush() {
    let mut m = boot(1);
    let mm = m.create_process().expect("boot: create process");
    let addr = m.setup_map_anon(mm, 2).expect("boot: map anon");
    run_script(
        &mut m,
        mm,
        vec![
            ProgAction::Access {
                va: addr,
                write: true,
            },
            ProgAction::Syscall(Syscall::Mprotect {
                addr,
                pages: 2,
                write: false,
            }),
            ProgAction::Syscall(Syscall::Mprotect {
                addr,
                pages: 2,
                write: true,
            }),
            ProgAction::Access {
                va: addr,
                write: true,
            }, // permitted again
        ],
    );
    assert_eq!(m.stats.counters.get("segfault"), 0);
    // Only the protection *reduction* flushed.
    assert_eq!(m.stats.counters.get("shootdown"), 1);
    assert!(m.violations().is_empty());
}

#[test]
fn send_reads_user_memory_through_kernel_pcid() {
    let mut m = boot(1);
    let mm = m.create_process().expect("boot: create process");
    let f = m.create_file(3).expect("boot: create file");
    let addr = m.setup_map_file(mm, f, true).expect("boot: map file");
    run_script(
        &mut m,
        mm,
        vec![
            ProgAction::Access {
                va: addr,
                write: false,
            },
            ProgAction::Access {
                va: addr.add(4096),
                write: false,
            },
            ProgAction::Access {
                va: addr.add(2 * 4096),
                write: false,
            },
            ProgAction::Syscall(Syscall::Send { addr, pages: 3 }),
            ProgAction::Syscall(Syscall::Send { addr, pages: 3 }),
        ],
    );
    assert_eq!(m.stats.counters.get("send"), 2);
    assert_eq!(m.stats.counters.get("send_efault"), 0);
    // Under PTI (safe mode default) the kernel's accesses populate the
    // kernel PCID: the second send hits where the first missed.
    let tlb = &m.tlbs[0];
    assert!(tlb.stats().hits > 0);
    assert!(m.violations().is_empty());
}

#[test]
fn send_faults_unmapped_pages_in() {
    let mut m = boot(1);
    let mm = m.create_process().expect("boot: create process");
    let f = m.create_file(2).expect("boot: create file");
    let addr = m.setup_map_file(mm, f, true).expect("boot: map file");
    // No prior touches: the kernel demand-faults the pages itself.
    run_script(
        &mut m,
        mm,
        vec![ProgAction::Syscall(Syscall::Send { addr, pages: 2 })],
    );
    assert_eq!(m.stats.counters.get("send"), 1);
    assert!(
        m.mms[&mm].space.entry(addr).is_some(),
        "kernel faulted the page in"
    );
    assert!(m.violations().is_empty());
}

#[test]
fn fdatasync_covers_every_mapping_of_the_file() {
    let mut m = boot(1);
    let mm = m.create_process().expect("boot: create process");
    let f = m.create_file(4).expect("boot: create file");
    let a1 = m.setup_map_file(mm, f, true).expect("boot: map file");
    let a2 = m.setup_map_file(mm, f, true).expect("boot: map file");
    run_script(
        &mut m,
        mm,
        vec![
            ProgAction::Access {
                va: a1,
                write: true,
            },
            ProgAction::Access {
                va: a2.add(4096),
                write: true,
            },
            ProgAction::Syscall(Syscall::Fdatasync { file: f }),
        ],
    );
    assert_eq!(
        m.stats.counters.get("writeback_pages"),
        2,
        "both VMAs scanned"
    );
    for (addr, page) in [(a1, 0u64), (a2, 1)] {
        let (pte, _) = m.mms[&mm].space.entry(addr.add(page * 4096)).unwrap();
        assert!(!pte.writable(), "cleaned through both mappings");
    }
    assert!(m.violations().is_empty());
}

#[test]
fn munmap_frees_frames_and_faults_after() {
    let mut m = boot(1);
    let mm = m.create_process().expect("boot: create process");
    let addr = m.setup_map_anon(mm, 4).expect("boot: map anon");
    let frames_before = m.mem.allocated_frames();
    run_script(
        &mut m,
        mm,
        vec![
            ProgAction::Access {
                va: addr,
                write: true,
            },
            ProgAction::Access {
                va: addr.add(4096),
                write: true,
            },
            ProgAction::Syscall(Syscall::Munmap { addr, pages: 4 }),
            ProgAction::Access {
                va: addr,
                write: false,
            }, // no VMA any more
        ],
    );
    assert_eq!(m.stats.counters.get("munmap"), 1);
    assert_eq!(m.stats.counters.get("segfault"), 1, "the region is gone");
    // The two data frames were freed; table pages may also have been.
    assert!(m.mem.allocated_frames() <= frames_before);
    assert!(m.mms[&mm].vma_at(addr).is_none());
}

#[test]
fn two_processes_are_isolated_by_pcid() {
    // Threads of different processes alternate on one core; TLB entries
    // are PCID-tagged, so no flush storm and no cross-talk.
    let mut m = boot(1);
    let mm_a = m.create_process().expect("boot: create process");
    let mm_b = m.create_process().expect("boot: create process");
    let a = m.setup_map_anon(mm_a, 2).expect("boot: map anon");
    let b = m.setup_map_anon(mm_b, 2).expect("boot: map anon");
    // Interleave by spawning A, letting it finish, then B, then A again.
    m.spawn(
        mm_a,
        CoreId(0),
        Box::new(ScriptProg::new(vec![ProgAction::Access {
            va: a,
            write: true,
        }])),
    );
    m.run();
    m.spawn(
        mm_b,
        CoreId(0),
        Box::new(ScriptProg::new(vec![ProgAction::Access {
            va: b,
            write: true,
        }])),
    );
    m.run();
    let misses_before = m.tlbs[0].stats().misses;
    m.spawn(
        mm_a,
        CoreId(0),
        Box::new(ScriptProg::new(vec![ProgAction::Access {
            va: a,
            write: false,
        }])),
    );
    m.run();
    // A's entry survived B's tenure thanks to PCID tagging: no new miss
    // beyond the demand faults already counted.
    assert_eq!(
        m.tlbs[0].stats().misses,
        misses_before,
        "PCID-tagged entry survived"
    );
    assert!(m.violations().is_empty());
}

#[test]
fn yield_round_robins_threads_on_one_core() {
    let mut m = boot(1);
    let mm = m.create_process().expect("boot: create process");
    struct Yielder {
        left: u32,
        log: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
        id: u32,
    }
    impl Prog for Yielder {
        fn next(&mut self, _ctx: &ProgCtx) -> ProgAction {
            if self.left == 0 {
                return ProgAction::Exit;
            }
            self.left -= 1;
            self.log.borrow_mut().push(self.id);
            ProgAction::Yield
        }
    }
    let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    m.spawn(
        mm,
        CoreId(0),
        Box::new(Yielder {
            left: 3,
            log: log.clone(),
            id: 1,
        }),
    );
    m.spawn(
        mm,
        CoreId(0),
        Box::new(Yielder {
            left: 3,
            log: log.clone(),
            id: 2,
        }),
    );
    m.run();
    assert_eq!(&*log.borrow(), &vec![1, 2, 1, 2, 1, 2], "fair alternation");
    assert!(m.stats.counters.get("context_switch") >= 5);
}

#[test]
fn thp_fault_promotes_and_madvise_fractures() {
    let mut m = boot(1);
    let mm = m.create_process().expect("boot: create process");
    let addr = m.setup_map_anon_thp(mm, 512).expect("boot: map thp anon");
    run_script(
        &mut m,
        mm,
        vec![
            ProgAction::Access {
                va: addr,
                write: true,
            },
            // Lands inside the promoted hugepage: no second demand fault.
            ProgAction::Access {
                va: addr.add(5 * 4096),
                write: false,
            },
            // Fracture: split the hugepage, zap 8 of its 512 subpages.
            ProgAction::Syscall(Syscall::MadviseDontNeed { addr, pages: 8 }),
            // The remainder survives the split as 4KB PTEs.
            ProgAction::Access {
                va: addr.add(16 * 4096),
                write: false,
            },
        ],
    );
    assert_eq!(m.stats.counters.get("thp_promote"), 1);
    assert_eq!(
        m.stats.counters.get("demand_fault"),
        1,
        "one fault mapped 2MB"
    );
    assert_eq!(m.stats.counters.get("thp_split"), 1);
    // Zapped subpages are gone; the rest are intact 4KB leaves.
    assert!(m.mms[&mm].space.entry(addr).is_none());
    let (pte, size) = m.mms[&mm].space.entry(addr.add(16 * 4096)).unwrap();
    assert_eq!(size, tlbdown_types::PageSize::Size4K);
    assert!(pte.writable());
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

#[test]
fn buggy_fracture_leaves_a_stale_huge_entry() {
    // The `buggy_fracture` canary: INVLPG that only evicts the 4KB-sized
    // key leaves the fractured 2MB entry cached, so a later access to a
    // zapped subpage translates through freed memory — the oracle flags
    // it. The correct path (default) stays clean on the same script.
    let script = |addr: VirtAddr| {
        vec![
            ProgAction::Access {
                va: addr,
                write: true,
            },
            ProgAction::Syscall(Syscall::MadviseDontNeed { addr, pages: 8 }),
            // Re-touch a zapped subpage after the flush retired.
            ProgAction::Access {
                va: addr.add(4096),
                write: false,
            },
        ]
    };
    for buggy in [false, true] {
        let mut m = Machine::new(KernelConfig::test_machine(1).with_buggy_fracture(buggy));
        let mm = m.create_process().expect("boot: create process");
        let addr = m.setup_map_anon_thp(mm, 512).expect("boot: map thp anon");
        run_script(&mut m, mm, script(addr));
        assert_eq!(m.stats.counters.get("thp_promote"), 1);
        if buggy {
            assert!(
                !m.violations().is_empty(),
                "split-blind INVLPG must trip the stale-TLB oracle"
            );
        } else {
            assert!(m.violations().is_empty(), "{:?}", m.violations());
        }
    }
}

#[test]
fn set_associative_geometry_pays_stlb_penalty_under_pressure() {
    let mut m = Machine::new(
        KernelConfig::test_machine(1).with_tlb_geometry(tlbdown_tlb::TlbGeometry::skylake_sp()),
    );
    let mm = m.create_process().expect("boot: create process");
    let addr = m.setup_map_anon(mm, 256).expect("boot: map anon");
    // First pass fills 256 4KB entries (L1 holds 64); the second pass
    // finds the overflow only in the STLB and pays the extra latency.
    let mut actions = Vec::new();
    for pass in 0..2 {
        for i in 0..256u64 {
            actions.push(ProgAction::Access {
                va: addr.add(i * 4096),
                write: pass == 0,
            });
        }
    }
    run_script(&mut m, mm, actions);
    assert!(
        m.tlbs[0].stats().stlb_hits > 0,
        "working set larger than the L1 DTLB must hit in the STLB"
    );
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

#[test]
fn cow_write_through_one_mapping_preserves_the_other_reader() {
    // Private file mapping CoW: the writer gets a copy; a reader thread of
    // the same process sharing the same VMA keeps reading the ORIGINAL
    // page-cache frame after the CoW? No — same mm shares the PTE, so the
    // reader must see the new frame after the shootdown. Verify both the
    // shootdown and the PTE.
    let mut m = Machine::new(KernelConfig::test_machine(2).with_opts(OptConfig::all()));
    let mm = m.create_process().expect("boot: create process");
    let f = m.create_file(1).expect("boot: create file");
    let addr = m.setup_map_file(mm, f, false).expect("boot: map file");
    struct Reader {
        addr: u64,
        i: u64,
    }
    impl Prog for Reader {
        fn next(&mut self, _ctx: &ProgCtx) -> ProgAction {
            self.i += 1;
            if self.i > 20_000 {
                return ProgAction::Exit;
            }
            ProgAction::Access {
                va: VirtAddr::new(self.addr),
                write: false,
            }
        }
    }
    m.spawn(
        mm,
        CoreId(1),
        Box::new(Reader {
            addr: addr.as_u64(),
            i: 0,
        }),
    );
    m.spawn(
        mm,
        CoreId(0),
        Box::new(ScriptProg::new(vec![
            ProgAction::Compute(Cycles::new(50_000)),
            ProgAction::Access {
                va: addr,
                write: true,
            }, // CoW
        ])),
    );
    m.run_until(Cycles::new(10_000_000));
    assert_eq!(m.stats.counters.get("cow_fault"), 1);
    assert!(
        m.stats.counters.get("ipis_sent") >= 1,
        "CoW shot down the reader"
    );
    let (pte, _) = m.mms[&mm].space.entry(addr).unwrap();
    assert_ne!(
        pte.addr, m.files[&f].pages[0],
        "PTE points at the private copy"
    );
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

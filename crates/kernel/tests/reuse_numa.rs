//! Behavioural tests for the two follow-on protocol levels: L7 reuse-skip
//! (arXiv 2409.10946) and L8 numaPTE (arXiv 2401.15558), plus their
//! deliberately-broken canary variants.

use tlbdown_core::OptConfig;
use tlbdown_kernel::prog::ScriptProg;
use tlbdown_kernel::{KernelConfig, Machine, ProgAction, Syscall};
use tlbdown_types::{CoreId, Cycles, Topology, VirtAddr};

fn reuse_cfg() -> KernelConfig {
    KernelConfig::test_machine(2).with_opts(OptConfig::baseline().with_reuse_skip(true))
}

fn numa_cfg() -> KernelConfig {
    let mut cfg =
        KernelConfig::test_machine(4).with_opts(OptConfig::baseline().with_numa_pte(true));
    cfg.topo = Topology::new(2, 2);
    cfg
}

fn run_script(m: &mut Machine, mm: tlbdown_types::MmId, core: u32, actions: Vec<ProgAction>) {
    m.spawn(mm, CoreId(core), Box::new(ScriptProg::new(actions)));
}

#[test]
fn reuse_skip_elides_the_madvise_flush_and_restores_on_refault() {
    let mut m = Machine::new(reuse_cfg());
    let mm = m.create_process().expect("boot: create process");
    let addr = m.setup_map_anon(mm, 4).expect("boot: map anon");
    run_script(
        &mut m,
        mm,
        0,
        vec![
            ProgAction::Access {
                va: addr,
                write: true,
            },
            ProgAction::Access {
                va: addr.add(4096),
                write: true,
            },
            ProgAction::Syscall(Syscall::MadviseDontNeed { addr, pages: 2 }),
        ],
    );
    // Allocator churn: the same addresses come right back — on a core
    // whose TLB never cached them, so the touch demand-faults into the
    // reuse window instead of riding the surviving entry.
    run_script(
        &mut m,
        mm,
        1,
        vec![
            ProgAction::Compute(Cycles::new(300_000)),
            ProgAction::Access {
                va: addr,
                write: true,
            },
            ProgAction::Access {
                va: addr.add(4096),
                write: false,
            },
        ],
    );
    m.run();
    assert_eq!(m.stats.counters.get("reuse_park"), 2, "both zaps parked");
    assert_eq!(m.stats.counters.get("reuse_hit"), 2, "both refaults reused");
    assert_eq!(
        m.stats.counters.get("shootdown"),
        0,
        "the madvise flush was elided and never paid back"
    );
    // The restored PTEs translate again.
    assert!(m.mms[&mm].space.entry(addr).is_some());
    assert!(m.mms[&mm].space.entry(addr.add(4096)).is_some());
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

#[test]
fn reuse_is_refused_when_the_pte_version_moved() {
    // Satellite: an elided flush is only legal when the versioned-PTE
    // check passes. Poison the kernel-side version after parking: the
    // refault must take the ordinary demand path (no reuse), stay legal,
    // and leave the parked debt to be paid by the later munmap.
    let mut m = Machine::new(reuse_cfg());
    let mm = m.create_process().expect("boot: create process");
    let addr = m.setup_map_anon(mm, 2).expect("boot: map anon");
    run_script(
        &mut m,
        mm,
        0,
        vec![
            ProgAction::Access {
                va: addr,
                write: true,
            },
            ProgAction::Syscall(Syscall::MadviseDontNeed { addr, pages: 1 }),
        ],
    );
    m.run();
    assert_eq!(m.stats.counters.get("reuse_park"), 1);
    // Simulate a concurrent modification the window missed.
    *m.mms
        .get_mut(&mm)
        .expect("mm exists")
        .pte_versions
        .entry(addr.vpn())
        .or_insert(0) += 1;
    // Refault from a cold TLB so the window is actually consulted.
    run_script(
        &mut m,
        mm,
        1,
        vec![
            ProgAction::Access {
                va: addr,
                write: true,
            },
            ProgAction::Syscall(Syscall::Munmap { addr, pages: 2 }),
        ],
    );
    m.run();
    assert_eq!(
        m.stats.counters.get("reuse_hit"),
        0,
        "stale version refused"
    );
    assert_eq!(m.stats.counters.get("reuse_version_miss"), 1);
    assert!(
        m.stats.counters.get("reuse_debt_flush") >= 1,
        "munmap paid the parked debt with a real flush"
    );
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

#[test]
fn reuse_window_overflow_pays_debt_flushes() {
    let mut m = Machine::new(reuse_cfg());
    let mm = m.create_process().expect("boot: create process");
    let pages = (tlbdown_kernel::mm::REUSE_WINDOW_CAP + 8) as u64;
    let addr = m.setup_map_anon(mm, pages).expect("boot: map anon");
    let mut actions = Vec::new();
    for i in 0..pages {
        actions.push(ProgAction::Access {
            va: addr.add(i * 4096),
            write: true,
        });
    }
    actions.push(ProgAction::Syscall(Syscall::MadviseDontNeed {
        addr,
        pages,
    }));
    run_script(&mut m, mm, 0, actions);
    m.run();
    assert_eq!(m.stats.counters.get("reuse_park"), pages);
    assert_eq!(
        m.stats.counters.get("reuse_evict"),
        8,
        "FIFO overflow evicts"
    );
    assert!(m.stats.counters.get("reuse_debt_flush") >= 8);
    assert_eq!(
        m.mms[&mm].reuse.len(),
        tlbdown_kernel::mm::REUSE_WINDOW_CAP,
        "window stays bounded"
    );
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

/// The canary script: core 1 warms a translation, core 0 zaps it with
/// `madvise(DONTNEED)` mid-window, core 1 touches it again.
fn cross_core_zap_scripts(m: &mut Machine, mm: tlbdown_types::MmId, addr: VirtAddr) {
    run_script(
        m,
        mm,
        1,
        vec![
            ProgAction::Access {
                va: addr,
                write: true,
            },
            ProgAction::Compute(Cycles::new(400_000)),
            ProgAction::Access {
                va: addr,
                write: false,
            },
        ],
    );
    run_script(
        m,
        mm,
        0,
        vec![
            ProgAction::Compute(Cycles::new(60_000)),
            ProgAction::Syscall(Syscall::MadviseDontNeed { addr, pages: 1 }),
        ],
    );
}

#[test]
fn buggy_reuse_skip_retire_at_park_is_a_real_stale_read() {
    // Satellite: `buggy_reuse_skip` claims the flush guarantee at park
    // time with no flush run. Core 1's warm entry survives, so its
    // post-park touch reads through a translation the kernel has already
    // "guaranteed" gone — a deterministic oracle violation under
    // `speculative_fill_on_fault`. The real reuse-skip path runs the same
    // schedule clean: its parked pairs stay un-retired.
    for buggy in [false, true] {
        let mut m = Machine::new(reuse_cfg().with_buggy_reuse_skip(buggy));
        assert!(m.cfg.speculative_fill_on_fault);
        let mm = m.create_process().expect("boot: create process");
        let addr = m.setup_map_anon(mm, 2).expect("boot: map anon");
        cross_core_zap_scripts(&mut m, mm, addr);
        m.run_until(Cycles::new(10_000_000));
        assert_eq!(m.stats.counters.get("reuse_park"), 1);
        if buggy {
            assert_eq!(m.stats.counters.get("reuse_buggy_retire"), 1);
            assert!(
                !m.violations().is_empty(),
                "retire-at-park must trip the stale-TLB oracle"
            );
        } else {
            assert!(m.violations().is_empty(), "{:?}", m.violations());
        }
    }
}

#[test]
fn numapte_syncs_replicas_and_fetches_metadata_node_locally() {
    let mut m = Machine::new(numa_cfg());
    let mm = m.create_process().expect("boot: create process");
    let addr = m.setup_map_anon(mm, 2).expect("boot: map anon");
    // Core 0 (socket 0) and core 2 (socket 1) both warm the page, then
    // core 0 unmaps it: the shootdown must cross sockets.
    run_script(
        &mut m,
        mm,
        2,
        vec![
            ProgAction::Access {
                va: addr,
                write: true,
            },
            ProgAction::Compute(Cycles::new(500_000)),
        ],
    );
    run_script(
        &mut m,
        mm,
        0,
        vec![
            ProgAction::Access {
                va: addr,
                write: false,
            },
            ProgAction::Compute(Cycles::new(60_000)),
            ProgAction::Syscall(Syscall::Munmap { addr, pages: 2 }),
        ],
    );
    m.run_until(Cycles::new(10_000_000));
    assert!(
        m.stats.counters.get("numapte_replica_sync") >= 1,
        "the PTE update synced the remote socket's replica"
    );
    assert!(
        m.stats.counters.get("numapte_local_fetch") >= 1,
        "the cross-socket responder read node-local metadata"
    );
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

#[test]
fn buggy_numapte_serves_a_stale_replica_walk() {
    // Core 2 (socket 1) loses its TLB entry to the munmap shootdown, but
    // under `buggy_numapte` its socket's replica never saw the update: the
    // re-walk installs the old PTE at the old version and the next access
    // reads through it after the real flush retired — an oracle violation.
    // The real L8 path synced the replica, so the same schedule is clean.
    for buggy in [false, true] {
        let mut m = Machine::new(numa_cfg().with_buggy_numapte(buggy));
        let mm = m.create_process().expect("boot: create process");
        let addr = m.setup_map_anon(mm, 2).expect("boot: map anon");
        run_script(
            &mut m,
            mm,
            2,
            vec![
                ProgAction::Access {
                    va: addr,
                    write: true,
                },
                ProgAction::Compute(Cycles::new(500_000)),
                ProgAction::Access {
                    va: addr,
                    write: false,
                },
            ],
        );
        run_script(
            &mut m,
            mm,
            0,
            vec![
                ProgAction::Access {
                    va: addr,
                    write: false,
                },
                ProgAction::Compute(Cycles::new(60_000)),
                ProgAction::Syscall(Syscall::Munmap { addr, pages: 2 }),
            ],
        );
        m.run_until(Cycles::new(10_000_000));
        if buggy {
            assert!(
                m.stats.counters.get("numapte_sync_skipped") >= 1,
                "the buggy path skipped at least one replica sync"
            );
            assert!(
                m.stats.counters.get("numapte_stale_walk") >= 1,
                "the stale replica satisfied a page walk"
            );
            assert!(
                !m.violations().is_empty(),
                "the stale-replica read must trip the oracle"
            );
        } else {
            assert!(m.violations().is_empty(), "{:?}", m.violations());
        }
    }
}

#[test]
fn both_levels_compose_without_violations() {
    let mut cfg = KernelConfig::test_machine(4)
        .with_opts(OptConfig::all().with_reuse_skip(true).with_numa_pte(true));
    cfg.topo = Topology::new(2, 2);
    let mut m = Machine::new(cfg);
    let mm = m.create_process().expect("boot: create process");
    let addr = m.setup_map_anon(mm, 8).expect("boot: map anon");
    for core in 0..4u32 {
        let base = addr.add(core as u64 * 2 * 4096);
        // Each core parks its own pages, then refaults the pages its
        // neighbour parked — cold in this core's TLB, warm in the window.
        let neighbour = addr.add(((core as u64 + 1) % 4) * 2 * 4096);
        run_script(
            &mut m,
            mm,
            core,
            vec![
                ProgAction::Access {
                    va: base,
                    write: true,
                },
                ProgAction::Syscall(Syscall::MadviseDontNeed {
                    addr: base,
                    pages: 2,
                }),
                ProgAction::Compute(Cycles::new(800_000)),
                ProgAction::Access {
                    va: neighbour,
                    write: true,
                },
            ],
        );
    }
    m.run_until(Cycles::new(30_000_000));
    assert!(m.stats.counters.get("reuse_hit") >= 1);
    assert!(m.stats.counters.get("numapte_replica_sync") >= 1);
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

#[test]
fn overlapping_mmap_records_a_typed_error_instead_of_panicking() {
    // Regression for the former `expect("cursor placement cannot
    // overlap")`: force the cursor onto an occupied range and confirm the
    // syscall fails with a recorded `InvalidArgument` while the machine
    // keeps running.
    let mut m = Machine::new(KernelConfig::test_machine(1));
    let mm = m.create_process().expect("boot: create process");
    let cursor = m.mms[&mm].mmap_cursor;
    m.mms
        .get_mut(&mm)
        .expect("mm exists")
        .insert_vma(tlbdown_kernel::Vma {
            range: tlbdown_types::VirtRange::pages(cursor, 4, tlbdown_types::PageSize::Size4K),
            kind: tlbdown_kernel::VmaKind::Anon,
            prot_write: true,
            prot_exec: false,
            thp: false,
        })
        .expect("manual vma placement");
    run_script(
        &mut m,
        mm,
        0,
        vec![ProgAction::Syscall(Syscall::MmapAnon { pages: 1 })],
    );
    m.run();
    assert!(
        m.recorded_errors()
            .iter()
            .any(|e| matches!(e, tlbdown_types::SimError::InvalidArgument(_))),
        "{:?}",
        m.recorded_errors()
    );
    assert!(m.violations().is_empty());
}

//! Differential chaos harness: run the shootdown-heavy workloads under a
//! matrix of {optimization level} × {fault plan} and assert that
//!
//! 1. no safe configuration ever trips the oracle, no matter how the
//!    fabric misbehaves (delayed / duplicated / dropped IPIs, late IRQ
//!    entry, cacheline jitter, slow-INVLPG cores),
//! 2. the *semantic* final state (syscalls completed, pages demand-faulted,
//!    threads retired) matches a fault-free run of the same workload —
//!    faults may change the schedule, never the outcome,
//! 3. when the fabric eats IPIs outright, the csd-lock watchdog fires,
//!    retries, then degrades to the conservative full-flush path so the
//!    machine completes in bounded time instead of hanging, and
//! 4. the whole thing is deterministic: same chaos seed ⇒ identical run.

use std::collections::BTreeMap;

use tlbdown_core::OptConfig;
use tlbdown_kernel::chaos::{ChaosConfig, WatchdogConfig};
use tlbdown_kernel::prog::{BusyLoopProg, MadviseLoopProg};
use tlbdown_kernel::{KernelConfig, Machine};
use tlbdown_sim::fault::FaultSpec;
use tlbdown_types::{CoreId, Cycles, SimError};

const ITERS: u64 = 6;
const SEED: u64 = 0x0dd5_eed5;

/// A watchdog tuned for test wall-clock: fires early, one retry.
fn test_watchdog() -> WatchdogConfig {
    WatchdogConfig {
        enabled: true,
        timeout_cycles: 250_000,
        max_resends: 1,
        ..WatchdogConfig::default()
    }
}

fn boot_chaos(opts: OptConfig, safe: bool, fault: FaultSpec) -> Machine {
    let chaos = ChaosConfig {
        fault,
        fault_seed: SEED,
        watchdog: test_watchdog(),
    };
    // A reuse window smaller than the madvise working set: the elision
    // levels (L7/L8) then pay capacity-eviction debt flushes, keeping
    // real IPIs in flight for the fault plans to bite on. Inert below L7.
    Machine::new(
        KernelConfig::test_machine(4)
            .with_opts(opts)
            .with_safe_mode(safe)
            .with_chaos(chaos)
            .with_reuse_window_cap(4),
    )
}

/// Spawn the shared-mm stress workload: two madvise initiators, two busy
/// responders, one mm across all four cores.
fn spawn_workload(m: &mut Machine) {
    let mm = m.create_process().expect("boot: create process");
    m.spawn(mm, CoreId(0), Box::new(MadviseLoopProg::new(8, ITERS)));
    m.spawn(mm, CoreId(1), Box::new(BusyLoopProg));
    m.spawn(mm, CoreId(2), Box::new(MadviseLoopProg::new(3, ITERS)));
    m.spawn(mm, CoreId(3), Box::new(BusyLoopProg));
}

/// The semantic outcome of a run: what happened, independent of when.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    madvise: u64,
    mmap: u64,
    demand_faults: u64,
    initiators_done: bool,
}

fn run_workload(m: &mut Machine) -> Outcome {
    spawn_workload(m);
    m.run_until(Cycles::new(80_000_000));
    Outcome {
        madvise: m.stats.counters.get("madvise_dontneed"),
        mmap: m.stats.counters.get("mmap_anon"),
        demand_faults: m.stats.counters.get("demand_fault"),
        // Threads 0 and 2 are the madvise loops; the busy loops never exit.
        initiators_done: m.threads[0].done && m.threads[2].done,
    }
}

#[test]
fn no_fault_plan_trips_the_oracle() {
    // Every optimization level × every fault preset: the protocols must
    // stay safe under adversarial timing, and the semantic outcome must
    // match the fault-free baseline of the same config.
    for (opts_name, opts) in [
        ("baseline", OptConfig::baseline()),
        ("general_four", OptConfig::general_four()),
        ("all", OptConfig::all()),
    ] {
        let baseline = {
            let mut m = boot_chaos(opts, true, FaultSpec::none());
            run_workload(&mut m)
        };
        assert!(
            baseline.initiators_done,
            "{opts_name}: fault-free run did not finish"
        );
        assert_eq!(baseline.madvise, 2 * ITERS, "{opts_name}: fault-free run");
        for (fault_name, fault) in FaultSpec::matrix() {
            let mut m = boot_chaos(opts, true, fault);
            let out = run_workload(&mut m);
            assert!(
                m.violations().is_empty(),
                "{opts_name} under {fault_name}: oracle violations {:?}",
                m.violations()
            );
            assert_eq!(
                out, baseline,
                "{opts_name} under {fault_name}: outcome diverged from fault-free baseline \
                 (counters: {:?})",
                m.stats.counters
            );
        }
    }
}

#[test]
fn unsafe_mode_survives_the_fault_matrix() {
    // PTI off: single PCID per mm, different flush paths — same guarantees.
    for (fault_name, fault) in FaultSpec::matrix() {
        let mut m = boot_chaos(OptConfig::all(), false, fault);
        let out = run_workload(&mut m);
        assert!(
            m.violations().is_empty(),
            "unsafe mode under {fault_name}: {:?}",
            m.violations()
        );
        assert!(out.initiators_done, "unsafe mode under {fault_name}: hung");
        assert_eq!(out.madvise, 2 * ITERS, "unsafe mode under {fault_name}");
    }
}

#[test]
fn dropped_ipis_fire_watchdog_and_recover() {
    // A lossy fabric (35% drop): some shootdowns stall past the timeout,
    // the watchdog retries, and every syscall still completes.
    let mut m = boot_chaos(OptConfig::baseline(), true, FaultSpec::ipi_drop());
    let out = run_workload(&mut m);
    assert!(
        m.stats.counters.get("chaos_ipi_dropped") > 0,
        "fault plan never dropped an IPI: {:?}",
        m.stats.counters
    );
    assert!(
        m.stats.counters.get("csd_watchdog_fired") > 0,
        "watchdog never fired despite dropped IPIs: {:?}",
        m.stats.counters
    );
    assert!(
        out.initiators_done,
        "initiators hung: {:?}",
        m.stats.counters
    );
    assert_eq!(out.madvise, 2 * ITERS);
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

#[test]
fn total_ipi_loss_degrades_to_forced_full_flush() {
    // Drop *every* IPI: retries cannot help, so the watchdog must walk the
    // full escalation — fire, re-send (also lost), degrade to the
    // conservative flush-and-force-ack path — and the machine must still
    // finish with the flush guarantee intact (zero oracle violations).
    let fault = FaultSpec {
        ipi_drop_p: 1.0,
        ..FaultSpec::none()
    };
    let mut m = boot_chaos(OptConfig::baseline(), true, fault);
    let out = run_workload(&mut m);
    assert!(m.stats.counters.get("csd_watchdog_fired") > 0);
    assert!(
        m.stats.counters.get("csd_watchdog_degrade") > 0,
        "never degraded: {:?}",
        m.stats.counters
    );
    assert!(
        m.stats.counters.get("forced_full_flush") > 0,
        "no forced flush: {:?}",
        m.stats.counters
    );
    assert!(
        out.initiators_done,
        "watchdog failed to bound completion: {:?}",
        m.stats.counters
    );
    assert_eq!(out.madvise, 2 * ITERS);
    // The stall is diagnosed as a typed error, not an oracle violation.
    assert!(
        m.recorded_errors()
            .iter()
            .any(|e| matches!(e, SimError::ShootdownStall { .. })),
        "no ShootdownStall diagnostic: {:?}",
        m.recorded_errors()
    );
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

#[test]
fn slow_but_healthy_responders_are_never_quarantined() {
    // The escalation ladder's false-positive guard: responders that enter
    // their handlers very late (every IRQ entry delayed, up to past the
    // watchdog timeout) but never lose an IPI must ride out the retry
    // rungs — the backoff gives them room to ack — and finish at every
    // optimization level with zero quarantine entries and zero degrades.
    let fault = FaultSpec {
        irq_entry_delay_p: 1.0,
        irq_entry_delay_max: 300_000, // > test_watchdog timeout (250k)
        ..FaultSpec::none()
    };
    for (level, _, opts) in OptConfig::all_levels() {
        let baseline = {
            let mut m = boot_chaos(opts, true, FaultSpec::none());
            run_workload(&mut m)
        };
        let mut m = boot_chaos(opts, true, fault.clone());
        let out = run_workload(&mut m);
        assert!(
            m.faults.counters().irq_entries_delayed > 0,
            "level {level}: the fault plan never delayed an entry"
        );
        assert_eq!(
            m.stats.counters.get("quarantine_entries"),
            0,
            "level {level}: a slow-but-healthy responder was quarantined: {:?}",
            m.stats.counters
        );
        assert_eq!(
            m.stats.counters.get("csd_watchdog_degrade"),
            0,
            "level {level}: the ladder degraded on a merely-slow responder: {:?}",
            m.stats.counters
        );
        assert!(
            !m.recorded_errors()
                .iter()
                .any(|e| matches!(e, SimError::ResponderQuarantined { .. })),
            "level {level}: quarantine diagnostic recorded: {:?}",
            m.recorded_errors()
        );
        assert!(m.violations().is_empty(), "level {level}");
        assert_eq!(
            out, baseline,
            "level {level}: slow entries changed the semantic outcome"
        );
    }
}

#[test]
fn watchdog_disabled_hangs_on_total_ipi_loss() {
    // Negative control: with the watchdog off, a fully lossy fabric leaves
    // the first cross-core shootdown spinning forever — proof that the
    // liveness in the test above comes from the watchdog, not luck.
    let fault = FaultSpec {
        ipi_drop_p: 1.0,
        ..FaultSpec::none()
    };
    let chaos = ChaosConfig {
        fault,
        fault_seed: SEED,
        watchdog: WatchdogConfig {
            enabled: false,
            ..test_watchdog()
        },
    };
    let mut m = Machine::new(
        KernelConfig::test_machine(4)
            .with_opts(OptConfig::baseline())
            .with_safe_mode(true)
            .with_chaos(chaos),
    );
    let out = run_workload(&mut m);
    assert!(
        !out.initiators_done,
        "machine should hang without the watchdog: {:?}",
        m.stats.counters
    );
    assert!(out.madvise < 2 * ITERS);
}

#[cfg(feature = "trace")]
#[test]
fn watchdog_stall_attribution_stays_exact_in_real_traces() {
    // End-to-end span exactness under the escalation ladder: trace a run
    // whose fabric eats every IPI, so chains ride the watchdog to forced
    // acks. Every completed span must still partition exactly
    // (phase_sum == end_to_end), and for the forced spans the stall must
    // be attributed to the wait split (remote-flush / ack-wait), at
    // least one full watchdog timeout of it.
    use tlbdown_trace::span::{analyze, Phase};
    use tlbdown_trace::AckKind;
    let fault = FaultSpec {
        ipi_drop_p: 1.0,
        ..FaultSpec::none()
    };
    let mut m = boot_chaos(OptConfig::baseline(), true, fault);
    m.start_tracing(1 << 16);
    let out = run_workload(&mut m);
    assert!(out.initiators_done);
    let trace = m.take_trace();
    let a = analyze(&trace);
    assert!(!a.spans.is_empty(), "no spans reconstructed");
    let mut forced_spans = 0u64;
    for sp in &a.spans {
        assert_eq!(
            sp.phase_sum(),
            sp.end_to_end(),
            "span {:x} lost cycles in attribution",
            sp.op
        );
        if sp.acks.iter().any(|(_, _, k)| *k == AckKind::Forced) {
            forced_spans += 1;
            // The watchdog arms at Prep, so the wait split holds the
            // timeout minus the initiator's own pre-wait work.
            let pre_wait = sp.phases[Phase::Setup.idx()] + sp.phases[Phase::IpiInFlight.idx()];
            let wait = sp.phases[Phase::RemoteFlush.idx()] + sp.phases[Phase::AckWait.idx()];
            assert!(
                wait + pre_wait >= test_watchdog().timeout_cycles,
                "span {:x}: forced chain shows {wait} wait + {pre_wait} pre-wait \
                 cycles but a full timeout ({}) elapsed before the forced ack",
                sp.op,
                test_watchdog().timeout_cycles
            );
        }
    }
    assert!(
        forced_spans > 0,
        "total IPI loss should force-ack at least one traced span"
    );
}

#[test]
fn same_chaos_seed_replays_identically() {
    // Determinism end-to-end: identical seed ⇒ identical counters, final
    // time, and diagnostics, even under the kitchen-sink fault plan.
    let run = || {
        let mut m = boot_chaos(OptConfig::general_four(), true, FaultSpec::everything());
        spawn_workload(&mut m);
        m.run_until(Cycles::new(80_000_000));
        let counters: BTreeMap<&'static str, u64> = m.stats.counters.iter().collect();
        (
            counters,
            m.now(),
            m.violations().len(),
            m.recorded_errors().len(),
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same chaos seed must replay byte-for-byte");
}

#[test]
fn different_chaos_seeds_diverge() {
    // The seed actually steers the plan: a different seed yields a
    // different fault schedule (observable in the chaos counters).
    let chaos_counts = |seed: u64| {
        let chaos = ChaosConfig {
            fault: FaultSpec::everything(),
            fault_seed: seed,
            watchdog: test_watchdog(),
        };
        let mut m = Machine::new(
            KernelConfig::test_machine(4)
                .with_opts(OptConfig::baseline())
                .with_safe_mode(true)
                .with_chaos(chaos),
        );
        spawn_workload(&mut m);
        m.run_until(Cycles::new(80_000_000));
        let c: BTreeMap<&'static str, u64> = m
            .stats
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("chaos_") || k.starts_with("csd_"))
            .collect();
        (c, m.now())
    };
    assert_ne!(
        chaos_counts(1),
        chaos_counts(2),
        "different seeds should produce different fault schedules"
    );
}

#[test]
fn duplicate_ipi_vector_is_idempotent_at_every_opt_level() {
    // The shootdown vector delivered twice (fabric re-delivery) must be
    // idempotent at every cumulative optimization level: the second
    // delivery finds either a drained CSQ (spurious IRQ) or a stale CSQ
    // entry, and in neither case may it double-ack, shrink another item's
    // early-ack window, or leave call-single-queue state behind.
    for (level, _, opts) in OptConfig::all_levels() {
        let baseline = {
            let mut m = boot_chaos(opts, true, FaultSpec::none());
            run_workload(&mut m)
        };
        let mut m = boot_chaos(opts, true, FaultSpec::ipi_duplicate());
        let out = run_workload(&mut m);
        assert!(
            m.stats.counters.get("chaos_ipi_duplicated") > 0,
            "level {level}: the fault plan never duplicated an IPI"
        );
        assert!(
            m.violations().is_empty(),
            "level {level}: duplicated vectors tripped the oracle: {:?}",
            m.violations()
        );
        assert_eq!(
            out, baseline,
            "level {level}: duplicated vectors changed the semantic outcome"
        );
        for c in &m.cpus {
            assert!(
                c.csq.is_empty(),
                "level {level}: CSQ entry leaked on {:?}",
                c.id
            );
            assert_eq!(
                c.acked_unflushed, 0,
                "level {level}: early-ack window leaked on {:?}",
                c.id
            );
        }
        assert!(
            m.shootdowns.is_empty(),
            "level {level}: shootdowns left in flight: {:?}",
            m.shootdowns.keys()
        );
    }
}

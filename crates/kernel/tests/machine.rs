//! End-to-end machine tests: programs run, syscalls work, shootdowns
//! synchronize TLBs, and the safety oracle stays quiet for every protocol
//! variant — while flagging the LATR-style lazy mode.

use tlbdown_core::OptConfig;
use tlbdown_kernel::prog::{BusyLoopProg, Prog, ProgAction, ProgCtx, ScriptProg};
use tlbdown_kernel::{KernelConfig, Machine, Syscall};
use tlbdown_types::{CoreId, Cycles, VirtAddr};

fn boot(cores: u32, opts: OptConfig, safe: bool) -> Machine {
    Machine::new(
        KernelConfig::test_machine(cores)
            .with_opts(opts)
            .with_safe_mode(safe),
    )
}

/// A program that mmaps, touches pages, madvises them away, repeatedly.
struct MadviseLoop {
    pages: u64,
    iters: u64,
    state: u32,
    addr: u64,
    touch: u64,
    iter: u64,
}

impl MadviseLoop {
    fn new(pages: u64, iters: u64) -> Self {
        MadviseLoop {
            pages,
            iters,
            state: 0,
            addr: 0,
            touch: 0,
            iter: 0,
        }
    }
}

impl Prog for MadviseLoop {
    fn next(&mut self, ctx: &ProgCtx) -> ProgAction {
        match self.state {
            0 => {
                self.state = 1;
                ProgAction::Syscall(Syscall::MmapAnon { pages: self.pages })
            }
            1 => {
                self.addr = ctx.retval;
                self.touch = 0;
                self.state = 2;
                ProgAction::Nop
            }
            2 => {
                if self.touch < self.pages {
                    let va = VirtAddr::new(self.addr + self.touch * 4096);
                    self.touch += 1;
                    ProgAction::Access { va, write: true }
                } else {
                    self.state = 3;
                    ProgAction::Syscall(Syscall::MadviseDontNeed {
                        addr: VirtAddr::new(self.addr),
                        pages: self.pages,
                    })
                }
            }
            3 => {
                self.iter += 1;
                if self.iter >= self.iters {
                    ProgAction::Exit
                } else {
                    self.touch = 0;
                    self.state = 2;
                    ProgAction::Nop
                }
            }
            _ => ProgAction::Exit,
        }
    }
}

#[test]
fn single_thread_madvise_runs_clean() {
    let mut m = boot(2, OptConfig::baseline(), true);
    let mm = m.create_process().expect("boot: create process");
    m.spawn(mm, CoreId(0), Box::new(MadviseLoop::new(4, 10)));
    m.run();
    assert_eq!(m.stats.counters.get("madvise_dontneed"), 10);
    assert_eq!(
        m.stats.counters.get("demand_fault"),
        40,
        "every touch re-faults"
    );
    assert!(
        m.violations().is_empty(),
        "violations: {:?}",
        m.violations()
    );
}

#[test]
fn shootdown_reaches_responder() {
    // A busy responder thread on core 1 shares the mm: madvise on core 0
    // must IPI core 1.
    let mut m = boot(2, OptConfig::baseline(), true);
    let mm = m.create_process().expect("boot: create process");
    m.spawn(mm, CoreId(0), Box::new(MadviseLoop::new(4, 5)));
    m.spawn(mm, CoreId(1), Box::new(BusyLoopProg));
    m.run_until(Cycles::new(3_000_000));
    assert!(
        m.stats.counters.get("ipis_sent") >= 5,
        "counters: {:?}",
        m.stats.counters
    );
    assert!(m.stats.counters.get("shootdown_irq") >= 5);
    assert!(
        m.violations().is_empty(),
        "violations: {:?}",
        m.violations()
    );
    // Responder latency was recorded.
    assert!(
        m.stats
            .irq_lat
            .get(&CoreId(1))
            .map(|s| s.count())
            .unwrap_or(0)
            >= 5
    );
}

#[test]
fn all_optimizations_stay_safe() {
    for safe in [true, false] {
        for (level, _, opts) in OptConfig::all_levels() {
            let mut m = boot(4, opts, safe);
            let mm = m.create_process().expect("boot: create process");
            m.spawn(mm, CoreId(0), Box::new(MadviseLoop::new(8, 8)));
            m.spawn(mm, CoreId(1), Box::new(BusyLoopProg));
            m.spawn(mm, CoreId(2), Box::new(MadviseLoop::new(3, 8)));
            m.run_until(Cycles::new(20_000_000));
            assert!(
                m.violations().is_empty(),
                "level {level} safe={safe}: {:?}",
                m.violations()
            );
            assert_eq!(
                m.stats.counters.get("madvise_dontneed"),
                16,
                "level {level} safe={safe}"
            );
        }
    }
}

#[test]
fn optimized_initiator_is_faster() {
    // The headline claim: with the §3 techniques on, madvise latency on the
    // initiator drops relative to baseline (same machine, same workload).
    let lat = |opts: OptConfig| {
        let mut m = boot(2, opts, true);
        let mm = m.create_process().expect("boot: create process");
        m.spawn(mm, CoreId(0), Box::new(MadviseLoop::new(10, 50)));
        m.spawn(mm, CoreId(1), Box::new(BusyLoopProg));
        m.run_until(Cycles::new(50_000_000));
        m.stats.syscall_lat[&(CoreId(0), "madvise_dontneed")].mean()
    };
    let base = lat(OptConfig::baseline());
    let opt = lat(OptConfig::general_four());
    assert!(
        opt < base * 0.95,
        "expected ≥5% initiator gain: baseline {base:.0} vs optimized {opt:.0}"
    );
}

#[test]
fn early_ack_not_used_for_munmap_freed_tables() {
    // munmap frees page tables → early ack must be suppressed even when
    // the optimization is on (§3.2).
    let mut m = boot(2, OptConfig::baseline().with_early_ack(true), true);
    let mm = m.create_process().expect("boot: create process");
    let script = ScriptProg::new(vec![ProgAction::Syscall(Syscall::MmapAnon { pages: 4 })]);
    // Manual script: mmap, touch, munmap.
    struct P {
        state: u32,
        addr: u64,
        i: u64,
    }
    impl Prog for P {
        fn next(&mut self, ctx: &ProgCtx) -> ProgAction {
            match self.state {
                0 => {
                    self.state = 1;
                    ProgAction::Syscall(Syscall::MmapAnon { pages: 4 })
                }
                1 => {
                    self.addr = ctx.retval;
                    self.state = 2;
                    ProgAction::Nop
                }
                2 => {
                    if self.i < 4 {
                        let va = VirtAddr::new(self.addr + self.i * 4096);
                        self.i += 1;
                        ProgAction::Access { va, write: true }
                    } else {
                        self.state = 3;
                        ProgAction::Syscall(Syscall::Munmap {
                            addr: VirtAddr::new(self.addr),
                            pages: 4,
                        })
                    }
                }
                _ => ProgAction::Exit,
            }
        }
    }
    drop(script);
    m.spawn(
        mm,
        CoreId(0),
        Box::new(P {
            state: 0,
            addr: 0,
            i: 0,
        }),
    );
    m.spawn(mm, CoreId(1), Box::new(BusyLoopProg));
    m.run_until(Cycles::new(5_000_000));
    assert!(m.stats.counters.get("munmap") >= 1);
    assert!(m.stats.counters.get("ipis_sent") >= 1);
    assert_eq!(
        m.stats.counters.get("early_ack"),
        0,
        "freed_tables must suppress early ack: {:?}",
        m.stats.counters
    );
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

#[test]
fn latr_lazy_mode_trips_the_oracle() {
    // The related-work foil: LATR-style deferral returns from madvise
    // before remote TLBs are flushed. A responder that keeps touching the
    // zapped page through its stale entry violates the guarantee.
    struct Toucher {
        addr: u64,
        i: u64,
    }
    impl Prog for Toucher {
        fn next(&mut self, _ctx: &ProgCtx) -> ProgAction {
            self.i += 1;
            if self.i > 100_000 {
                return ProgAction::Exit;
            }
            ProgAction::Access {
                va: VirtAddr::new(self.addr),
                write: false,
            }
        }
    }
    struct Zapper {
        state: u32,
        addr: u64,
    }
    impl Prog for Zapper {
        fn next(&mut self, _ctx: &ProgCtx) -> ProgAction {
            match self.state {
                0 => {
                    self.state = 1;
                    // Warm-up delay so the toucher caches the mapping.
                    ProgAction::Compute(Cycles::new(60_000))
                }
                1 => {
                    self.state = 2;
                    ProgAction::Syscall(Syscall::MadviseDontNeed {
                        addr: VirtAddr::new(self.addr),
                        pages: 1,
                    })
                }
                _ => ProgAction::Exit,
            }
        }
    }
    let run = |lazy: bool| {
        let mut m = Machine::new(
            KernelConfig::test_machine(2)
                .with_opts(OptConfig::baseline())
                .with_lazy_latr(lazy),
        );
        let mm = m.create_process().expect("boot: create process");
        // Both threads use a fixed address: mmap + touch it first via a
        // setup program on core 0, which publishes the address.
        let addr = {
            m.spawn(mm, CoreId(0), Box::new(MmapOnce::default()));
            m.run_until(Cycles::new(1_000_000));
            MMAP_RESULT.with(|r| r.get())
        };
        assert_ne!(addr, 0, "setup mmap failed");
        m.spawn(mm, CoreId(1), Box::new(Toucher { addr, i: 0 }));
        m.spawn(mm, CoreId(0), Box::new(Zapper { state: 0, addr }));
        m.run_until(Cycles::new(10_000_000));
        m.violations().len()
    };
    assert_eq!(run(false), 0, "synchronous shootdowns are safe");
    assert!(
        run(true) > 0,
        "LATR-style lazy flushing must trip the oracle"
    );
}

thread_local! {
    static MMAP_RESULT: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Helper prog: mmap one page, publish the address, touch it, exit.
#[derive(Default)]
struct MmapOnce {
    state: u32,
}

impl Prog for MmapOnce {
    fn next(&mut self, ctx: &ProgCtx) -> ProgAction {
        match self.state {
            0 => {
                self.state = 1;
                ProgAction::Syscall(Syscall::MmapAnon { pages: 1 })
            }
            1 => {
                MMAP_RESULT.with(|r| r.set(ctx.retval));
                self.state = 2;
                ProgAction::Access {
                    va: VirtAddr::new(ctx.retval),
                    write: true,
                }
            }
            _ => ProgAction::Exit,
        }
    }
}

#[test]
fn lazy_core_skips_ipi_and_syncs_on_wakeup() {
    // Core 1 runs a thread, exits (going lazy on the mm), then the
    // initiator flushes — no IPI needed; when core 1 runs a new thread of
    // the same mm it must flush at switch-in.
    let mut m = boot(2, OptConfig::baseline(), true);
    let mm = m.create_process().expect("boot: create process");
    m.spawn(mm, CoreId(0), Box::new(MmapOnce::default()));
    m.run_until(Cycles::new(1_000_000));
    let addr = MMAP_RESULT.with(|r| r.get());
    // Core 1 touches the page then exits → lazy.
    m.spawn(
        mm,
        CoreId(1),
        Box::new(ScriptProg::new(vec![ProgAction::Access {
            va: VirtAddr::new(addr),
            write: false,
        }])),
    );
    m.run_until(Cycles::new(2_000_000));
    assert!(m.stats.counters.get("enter_lazy") >= 1);
    // Now madvise from core 0: core 1 is lazy → skipped.
    m.spawn(
        mm,
        CoreId(0),
        Box::new(ScriptProg::new(vec![ProgAction::Syscall(
            Syscall::MadviseDontNeed {
                addr: VirtAddr::new(addr),
                pages: 1,
            },
        )])),
    );
    m.run_until(Cycles::new(3_000_000));
    assert!(
        m.stats.counters.get("lazy_skip") >= 1,
        "{:?}",
        m.stats.counters
    );
    assert_eq!(m.stats.counters.get("ipis_sent"), 0);
    // Wake a new thread of the same mm on core 1: it must re-sync and the
    // old translation must be gone.
    m.spawn(
        mm,
        CoreId(1),
        Box::new(ScriptProg::new(vec![ProgAction::Access {
            va: VirtAddr::new(addr),
            write: false,
        }])),
    );
    m.run_until(Cycles::new(4_000_000));
    assert!(
        m.stats.counters.get("lazy_exit_flush") + m.stats.counters.get("switch_in_flush") >= 1,
        "{:?}",
        m.stats.counters
    );
    assert!(m.violations().is_empty(), "{:?}", m.violations());
}

#[test]
fn unknown_mm_setup_is_a_typed_error_not_a_panic() {
    use tlbdown_types::{MmId, SimError};
    let mut m = boot(2, OptConfig::baseline(), true);
    let bogus = MmId::new(0xdead);
    // Both setup entry points used to `expect("unknown mm")` and abort
    // the whole simulation in release builds; they must now surface the
    // bad handle as a typed error and leave the machine usable.
    assert_eq!(m.setup_map_anon(bogus, 4), Err(SimError::NoSuchMm(bogus)));
    let file = m.create_file(2).expect("create file");
    assert_eq!(
        m.setup_map_file(bogus, file, true),
        Err(SimError::NoSuchMm(bogus))
    );
    let mm = m
        .create_process()
        .expect("create process after bad handles");
    assert!(m.setup_map_anon(mm, 4).is_ok());
    assert!(m.violations().is_empty());
}

#[test]
fn cold_reboot_restarts_fresh_and_deterministic() {
    let run_workload = |m: &mut Machine| {
        let mm = m.create_process().expect("create process");
        m.spawn(mm, CoreId(0), Box::new(MadviseLoop::new(4, 6)));
        m.spawn(mm, CoreId(1), Box::new(BusyLoopProg));
        m.run_until(Cycles::new(2_000_000));
        assert!(m.violations().is_empty(), "{:?}", m.violations());
        m.state_digest()
    };

    let mut m = boot(2, OptConfig::all(), true);
    let first_boot = run_workload(&mut m);
    assert!(m.now() > Cycles::ZERO);
    assert!(!m.threads.is_empty());

    // The reboot loses everything volatile: clock, threads, address
    // spaces, TLB contents, in-flight shootdowns.
    let mut m = m.cold_reboot();
    assert_eq!(m.boot_epoch(), 1);
    assert_eq!(m.now(), Cycles::ZERO);
    assert!(m.threads.is_empty());
    assert!(m.mms.is_empty());
    assert!(m.shootdowns.is_empty());
    assert!(m.tlbs.iter().all(|t| t.is_empty()));

    // The rebooted kernel serves the same workload, and a second
    // machine rebooted the same way lands on the same digest: the
    // lifecycle is a pure function of (cfg, epoch).
    let second_boot = run_workload(&mut m);
    let mut twin = boot(2, OptConfig::all(), true);
    let twin_first = run_workload(&mut twin);
    assert_eq!(first_boot, twin_first);
    let mut twin = twin.cold_reboot();
    assert_eq!(run_workload(&mut twin), second_boot);
}
